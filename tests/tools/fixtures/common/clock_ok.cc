// Fixture: common/ is the raw-clock home — the seam's own OS clock reads
// must NOT fire the rule.
#include <ctime>

double SeamSeconds() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
}
