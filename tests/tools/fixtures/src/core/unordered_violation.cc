// Fixture: unordered container inside an engine result path.
#include <string>
#include <unordered_map>

int CountThings() {
  std::unordered_map<int, int> counts;
  counts[1] = 2;
  int total = 0;
  for (const auto& kv : counts) total += kv.second;
  return total;
}
