// raw-file-io path-scoping fixture: src/wal/ is the seam's home — the same
// libc calls that trip the rule elsewhere stay silent here.
#include <cstdio>

void Seam(int fd, const char* path) {
  FILE* f = fopen(path, "wb");
  (void)f;
  ::write(fd, "x", 1);
  fsync(fd);
}
