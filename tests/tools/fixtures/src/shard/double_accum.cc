// Fixture: raw floating accumulation inside a merge seam.
struct Part {
  double weight = 0.0;
  int count = 0;
};

Part MergeParts(Part a, const Part& b) {
  double weight = a.weight;
  weight += b.weight;
  a.weight = weight;
  a.count += b.count;  // integer accumulation is exact: must NOT flag
  return a;
}

double OutsideSeam(double acc, double x) {
  acc += x;  // not a merge/reduce seam: must NOT flag
  return acc;
}
