// Fixture: nothing to report. Mentions of forbidden names inside comments
// (std::mutex, rand, unordered_map) and strings must be ignored.
#include <map>
#include <string>

std::string Describe() { return "rand unordered_map std::mutex"; }

int Sum(const std::map<int, int>& m) {
  int total = 0;
  for (const auto& kv : m) total += kv.second;
  return total;
}
