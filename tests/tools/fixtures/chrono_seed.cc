// Fixture: RNG seeded from a clock.
#include <chrono>
#include <cstdint>

struct FakeRng {
  void Seed(uint64_t) {}
};

void SeedFromClock(FakeRng& rng) {
  rng.Seed(std::chrono::steady_clock::now().time_since_epoch().count());
}
