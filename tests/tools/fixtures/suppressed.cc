// Fixture: every violation carries a valid suppression -> clean file.
#include <random>

int SameLine() {
  return rand();  // easeml-lint: allow(raw-rng) fixture exercises same-line suppression
}

int NextLine() {
  // easeml-lint: allow(raw-rng) fixture exercises own-line suppression
  std::mt19937 gen(7);
  return static_cast<int>(gen());
}
