// Fixture: raw RNG primitives outside common/rng.
#include <random>

int Draw() {
  std::mt19937 gen(std::random_device{}());
  return static_cast<int>(gen());
}

int LibcDraw() { return rand(); }
