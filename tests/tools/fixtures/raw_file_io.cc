// raw-file-io fixture: POSIX file calls outside src/wal/ are findings;
// member calls and declarations that share a libc name are not.
#include <cstdio>

void Touch(int fd, const char* path) {
  FILE* f = fopen(path, "wb");  // finding: fopen
  (void)f;
  ::write(fd, "x", 1);  // finding: write (::-qualified is still the libc call)
  fsync(fd);            // finding: fsync
}

struct Sink {
  void write(const char* p, int n);  // declaration: silent
  void fsync();
};

void MemberCallsAreFine(Sink& s) {
  s.write("x", 1);  // member call: silent
  s.fsync();
}
