// Fixture: raw clock reads outside common/ (raw-clock), including one
// reasoned suppression that must be honored.
#include <chrono>
#include <ctime>

double WallSeconds() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec);
}

double ChronoSeconds() {
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(now.time_since_epoch()).count();
}

double SuppressedSeconds() {
  timespec ts{};
  // easeml-lint: allow(raw-clock) fixture proves reasoned suppressions work
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec);
}
