// Fixture: a Mutex member with no EASEML_GUARDED_BY field in the class.
#ifndef FIXTURE_UNGUARDED_H_
#define FIXTURE_UNGUARDED_H_

class Mutex {};

class Counter {
 public:
  void Bump();

 private:
  Mutex mu_;
  int value_ = 0;
};

class GuardedCounter {
 public:
  void Bump();

 private:
  Mutex mu_;
  int value_ EASEML_GUARDED_BY(mu_) = 0;  // annotated: must NOT flag
};

#define EASEML_GUARDED_BY(x)

#endif  // FIXTURE_UNGUARDED_H_
