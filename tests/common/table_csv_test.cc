#include <gtest/gtest.h>

#include <sstream>

#include "common/csv.h"
#include "common/table.h"

namespace easeml {
namespace {

TEST(TableTest, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"b", "22"});
  std::ostringstream os;
  t.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name  | value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(out.find("| b     | 22    |"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TableTest, FormatDoublePrecision) {
  EXPECT_EQ(Table::FormatDouble(1.23456, 2), "1.23");
  EXPECT_EQ(Table::FormatDouble(1.0, 4), "1.0000");
}

TEST(CsvTest, WritesHeaderAndRows) {
  std::ostringstream os;
  CsvWriter w(os, {"x", "series", "value"});
  EXPECT_TRUE(w.WriteRow({"0.5", "ease.ml", "0.01"}).ok());
  EXPECT_EQ(os.str(), "x,series,value\n0.5,ease.ml,0.01\n");
}

TEST(CsvTest, RejectsWidthMismatch) {
  std::ostringstream os;
  CsvWriter w(os, {"a", "b"});
  EXPECT_FALSE(w.WriteRow({"1"}).ok());
  EXPECT_FALSE(w.WriteRow({"1", "2", "3"}).ok());
}

TEST(CsvTest, EscapesSpecialCharacters) {
  EXPECT_EQ(CsvWriter::Escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::Escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::Escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::Escape("line\nbreak"), "\"line\nbreak\"");
}

}  // namespace
}  // namespace easeml
