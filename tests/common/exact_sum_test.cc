/// Exactness and order-invariance of ExactDoubleSum, plus the deterministic
/// shape of ReduceTree. These two primitives carry the sharded selector's
/// bit-identical-replay guarantee: candidate-set thresholds are evaluated
/// without rounding, and merging per-shard accumulators in ANY partition
/// must reproduce the sequential accumulation exactly.
#include "common/exact_sum.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/reduction_tree.h"
#include "common/rng.h"

namespace easeml {
namespace {

TEST(ExactDoubleSumTest, EmptySumIsZero) {
  ExactDoubleSum sum;
  EXPECT_EQ(sum.Sign(), 0);
  EXPECT_EQ(sum.Value(), 0.0);
  // 0 * n == empty sum.
  EXPECT_EQ(sum.CompareScaled(0.0, 17), 0);
  EXPECT_EQ(sum.CompareScaled(1.0, 3), 1);
  EXPECT_EQ(sum.CompareScaled(-1.0, 3), -1);
}

TEST(ExactDoubleSumTest, PointOneTimesThreeIsExact) {
  // Naive double arithmetic gets this wrong: 0.1 + 0.1 + 0.1 != 3 * 0.1
  // and (0.1*3)/3 > 0.1. The exact comparison must report equality.
  ExactDoubleSum sum;
  sum.Add(0.1);
  sum.Add(0.1);
  sum.Add(0.1);
  EXPECT_EQ(sum.CompareScaled(0.1, 3), 0);
  EXPECT_EQ(sum.CompareScaled(std::nextafter(0.1, 1.0), 3), 1);
  EXPECT_EQ(sum.CompareScaled(std::nextafter(0.1, 0.0), 3), -1);
}

TEST(ExactDoubleSumTest, CancellationIsExact) {
  ExactDoubleSum sum;
  sum.Add(1e300);
  sum.Add(1.0);
  sum.Add(-1e300);
  // Double arithmetic would have swallowed the 1.0 entirely.
  EXPECT_EQ(sum.Sign(), 1);
  EXPECT_EQ(sum.CompareScaled(1.0, 1), 0);
  sum.Add(-1.0);
  EXPECT_EQ(sum.Sign(), 0);
}

TEST(ExactDoubleSumTest, HandlesFullExponentRange) {
  ExactDoubleSum sum;
  const double kTiny = 5e-324;  // least subnormal
  sum.Add(kTiny);
  sum.Add(1e308);
  sum.Add(-1e308);
  EXPECT_EQ(sum.Sign(), 1);
  EXPECT_EQ(sum.CompareScaled(kTiny, 1), 0);
}

TEST(ExactDoubleSumTest, NegativeValuesAndSign) {
  ExactDoubleSum sum;
  sum.Add(-0.25);
  sum.Add(-0.5);
  EXPECT_EQ(sum.Sign(), -1);
  EXPECT_DOUBLE_EQ(sum.Value(), -0.75);
  EXPECT_EQ(sum.CompareScaled(-0.375, 2), 0);  // mean is exactly -0.375
}

TEST(ExactDoubleSumTest, ValueMatchesSimpleSums) {
  ExactDoubleSum sum;
  sum.Add(1.5);
  sum.Add(2.25);
  sum.Add(-0.75);
  EXPECT_DOUBLE_EQ(sum.Value(), 3.0);
}

TEST(ExactDoubleSumTest, OrderAndPartitionInvariance) {
  Rng rng(20260730);
  std::vector<double> values;
  for (int i = 0; i < 200; ++i) {
    // Wildly varying magnitudes to provoke rounding differences in any
    // floating-point accumulation order.
    const double mag = std::ldexp(rng.Uniform(-1.0, 1.0),
                                  rng.UniformInt(-60, 60));
    values.push_back(mag);
  }
  ExactDoubleSum sequential;
  for (double v : values) sequential.Add(v);

  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> shuffled = values;
    rng.Shuffle(shuffled);
    // Random partition into up to 7 "shards", each accumulated locally,
    // merged through the deterministic tree.
    const int shards = rng.UniformInt(1, 7);
    std::vector<ExactDoubleSum> parts(shards);
    for (double v : shuffled) parts[rng.UniformInt(0, shards - 1)].Add(v);
    ExactDoubleSum merged =
        ReduceTree(std::move(parts), [](ExactDoubleSum a,
                                        const ExactDoubleSum& b) {
          a.Merge(b);
          return a;
        });
    // Exact equality of the abstract sums: differences of the two
    // accumulators must vanish for every probe comparison.
    for (double probe : {values[0], values[7], 0.0, 1e-30, -3.25}) {
      for (int64_t n : {int64_t{1}, int64_t{3}, int64_t{200}}) {
        EXPECT_EQ(merged.CompareScaled(probe, n),
                  sequential.CompareScaled(probe, n));
      }
    }
    EXPECT_EQ(merged.Value(), sequential.Value());  // bit-identical
    EXPECT_EQ(merged.Sign(), sequential.Sign());
  }
}

TEST(ExactDoubleSumTest, ManyAdditionsNormalizeCorrectly) {
  ExactDoubleSum sum;
  constexpr int kCount = 100000;
  for (int i = 0; i < kCount; ++i) sum.Add(0.125);  // exactly representable
  EXPECT_EQ(sum.CompareScaled(0.125, kCount), 0);
  EXPECT_DOUBLE_EQ(sum.Value(), 0.125 * kCount);
}

TEST(ReduceTreeTest, SingleLeafPassesThrough) {
  EXPECT_EQ(ReduceTree(std::vector<int>{42},
                       [](int a, int b) { return a + b; }),
            42);
}

TEST(ReduceTreeTest, DeterministicPairwiseShape) {
  // A non-commutative merge exposes the tree shape: pairwise rounds with the
  // odd trailing leaf carried up produce left-to-right concatenation.
  for (int n = 1; n <= 9; ++n) {
    std::vector<std::string> leaves;
    std::string expected;
    for (int i = 0; i < n; ++i) {
      leaves.push_back(std::string(1, static_cast<char>('a' + i)));
      expected += static_cast<char>('a' + i);
    }
    EXPECT_EQ(ReduceTree(leaves,
                         [](std::string a, const std::string& b) {
                           return a + b;
                         }),
              expected);
  }
}

TEST(ReduceTreeTest, MinIndexArgmaxTieBreak) {
  // The merge rule the sharded schedulers use: larger key wins, equal keys
  // resolve to the smaller index — matching a sequential strict-> fold.
  struct Best {
    double key;
    int index;
  };
  auto merge = [](Best a, Best b) {
    if (a.key > b.key) return a;
    if (b.key > a.key) return b;
    return a.index < b.index ? a : b;
  };
  std::vector<Best> leaves = {{1.0, 4}, {3.0, 2}, {3.0, 0}, {2.0, 1}};
  const Best winner = ReduceTree(leaves, merge);
  EXPECT_EQ(winner.index, 0);
  EXPECT_EQ(winner.key, 3.0);
}

}  // namespace
}  // namespace easeml
