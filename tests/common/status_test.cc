#include "common/status.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace easeml {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryHelpersCarryCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Internal("boom").message(), "boom");
  EXPECT_FALSE(Status::Internal("boom").ok());
}

TEST(StatusTest, ToStringIncludesCodeName) {
  EXPECT_EQ(Status::NotFound("missing").ToString(), "NotFound: missing");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(0), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, OkStatusBecomesInternalError) {
  // A Result must never be "error with OK status".
  Result<int> r(Status::OK());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("hello"));
  EXPECT_EQ(r->size(), 5u);
}

namespace helpers {
Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Result<int> Doubled(int x) {
  EASEML_RETURN_NOT_OK(FailIfNegative(x));
  return 2 * x;
}

Result<int> DoubledTwice(int x) {
  EASEML_ASSIGN_OR_RETURN(int once, Doubled(x));
  EASEML_ASSIGN_OR_RETURN(int twice, Doubled(once));
  return twice;
}
}  // namespace helpers

TEST(ResultTest, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(helpers::Doubled(3).ok());
  EXPECT_EQ(helpers::Doubled(3).value(), 6);
  EXPECT_EQ(helpers::Doubled(-1).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ResultTest, AssignOrReturnMacroChains) {
  EXPECT_EQ(helpers::DoubledTwice(3).value(), 12);
  EXPECT_FALSE(helpers::DoubledTwice(-2).ok());
}

TEST(StatusCodeTest, AllCodesHaveNames) {
  const std::vector<StatusCode> codes = {
      StatusCode::kOk,            StatusCode::kInvalidArgument,
      StatusCode::kNotFound,      StatusCode::kOutOfRange,
      StatusCode::kAlreadyExists, StatusCode::kFailedPrecondition,
      StatusCode::kUnimplemented, StatusCode::kInternal};
  for (StatusCode c : codes) {
    EXPECT_FALSE(StatusCodeToString(c).empty());
    EXPECT_NE(StatusCodeToString(c), "Unknown");
  }
}

}  // namespace
}  // namespace easeml
