#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace easeml {
namespace {

TEST(RngTest, DeterministicUnderSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Uniform() == b.Uniform()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(2.0, 3.5);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 3.5);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(11);
  std::set<int> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.UniformInt(3, 7));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), 3);
  EXPECT_EQ(*seen.rbegin(), 7);
}

TEST(RngTest, NormalMomentsApproximatelyCorrect) {
  Rng rng(5);
  const int n = 50000;
  double sum = 0, sum2 = 0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal(2.0, 3.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(var, 9.0, 0.3);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(9);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, SampleWithoutReplacementDistinctAndInRange) {
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<int> s = rng.SampleWithoutReplacement(20, 8);
    ASSERT_EQ(s.size(), 8u);
    std::set<int> uniq(s.begin(), s.end());
    EXPECT_EQ(uniq.size(), 8u);
    for (int v : s) {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, 20);
    }
  }
}

TEST(RngTest, SampleWithoutReplacementFullSet) {
  Rng rng(3);
  std::vector<int> s = rng.SampleWithoutReplacement(5, 5);
  std::sort(s.begin(), s.end());
  EXPECT_EQ(s, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(RngTest, SampleWithoutReplacementZero) {
  Rng rng(3);
  EXPECT_TRUE(rng.SampleWithoutReplacement(5, 0).empty());
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(77);
  std::vector<int> v = {1, 2, 3, 4, 5, 6};
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, MultivariateNormalIdentityCovariance) {
  Rng rng(21);
  const int n = 3;
  // chol(I) = I, row-major.
  std::vector<double> chol = {1, 0, 0, 0, 1, 0, 0, 0, 1};
  std::vector<double> mean = {10.0, 20.0, 30.0};
  double sums[3] = {0, 0, 0};
  const int reps = 20000;
  for (int r = 0; r < reps; ++r) {
    auto x = rng.MultivariateNormal(mean, chol, n);
    for (int i = 0; i < n; ++i) sums[i] += x[i];
  }
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(sums[i] / reps, mean[i], 0.05);
  }
}

TEST(RngTest, MultivariateNormalCorrelationStructure) {
  Rng rng(22);
  // Covariance [[1, .9], [.9, 1]]: chol = [[1,0],[0.9, sqrt(0.19)]].
  std::vector<double> chol = {1.0, 0.0, 0.9, std::sqrt(0.19)};
  std::vector<double> mean = {0.0, 0.0};
  double sxy = 0;
  const int reps = 30000;
  for (int r = 0; r < reps; ++r) {
    auto x = rng.MultivariateNormal(mean, chol, 2);
    sxy += x[0] * x[1];
  }
  EXPECT_NEAR(sxy / reps, 0.9, 0.05);
}

TEST(RngTest, NextSeedProducesDistinctStreams) {
  Rng parent(1);
  Rng c1(parent.NextSeed()), c2(parent.NextSeed());
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (c1.Uniform() == c2.Uniform()) ++same;
  }
  EXPECT_LT(same, 5);
}

}  // namespace
}  // namespace easeml
