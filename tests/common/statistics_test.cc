#include "common/statistics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"

namespace easeml {
namespace {

TEST(StatisticsTest, MeanBasics) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({5.0}), 5.0);
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(StatisticsTest, VarianceBasics) {
  EXPECT_DOUBLE_EQ(Variance({}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({4.0}), 0.0);
  // Sample variance of {2, 4, 4, 4, 5, 5, 7, 9} is 32/7.
  EXPECT_NEAR(Variance({2, 4, 4, 4, 5, 5, 7, 9}), 32.0 / 7.0, 1e-12);
}

TEST(StatisticsTest, StdDevIsSqrtVariance) {
  const std::vector<double> v = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(StdDev(v), std::sqrt(Variance(v)));
}

TEST(StatisticsTest, MinMax) {
  const std::vector<double> v = {3.0, -1.0, 7.5, 0.0};
  EXPECT_DOUBLE_EQ(Min(v), -1.0);
  EXPECT_DOUBLE_EQ(Max(v), 7.5);
}

TEST(StatisticsTest, PercentileEndpointsAndMedian) {
  std::vector<double> v = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 10);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 40);
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 25);  // interpolated
  EXPECT_DOUBLE_EQ(Percentile({42.0}, 73), 42.0);
}

TEST(RunningStatTest, MatchesBatchStatistics) {
  Rng rng(3);
  std::vector<double> v;
  RunningStat rs;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Normal(5.0, 2.0);
    v.push_back(x);
    rs.Add(x);
  }
  EXPECT_EQ(rs.count(), 1000u);
  EXPECT_NEAR(rs.mean(), Mean(v), 1e-9);
  EXPECT_NEAR(rs.variance(), Variance(v), 1e-9);
  EXPECT_NEAR(rs.stddev(), StdDev(v), 1e-9);
  EXPECT_DOUBLE_EQ(rs.min(), Min(v));
  EXPECT_DOUBLE_EQ(rs.max(), Max(v));
}

TEST(RunningStatTest, EmptyAndSingle) {
  RunningStat rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  rs.Add(3.0);
  EXPECT_DOUBLE_EQ(rs.mean(), 3.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  EXPECT_DOUBLE_EQ(rs.min(), 3.0);
  EXPECT_DOUBLE_EQ(rs.max(), 3.0);
}

TEST(RunningStatTest, NumericallyStableForLargeOffsets) {
  // Welford should not lose precision for a large common offset.
  RunningStat rs;
  const double offset = 1e9;
  for (int i = 0; i < 100; ++i) rs.Add(offset + i % 2);
  EXPECT_NEAR(rs.variance(), 0.2525, 0.01);
}

}  // namespace
}  // namespace easeml
