#include "common/tournament_tree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/reduction_tree.h"
#include "common/rng.h"

namespace easeml {
namespace {

/// Associative summary with a total-order tie-break (min-index argmax) and
/// an exactly mergeable count — the shape the candidate index uses.
struct MaxSummary {
  int count = 0;
  double max = -1e300;
  int arg = -1;  // -1 = identity ("empty slot")

  static MaxSummary Merge(const MaxSummary& a, const MaxSummary& b) {
    MaxSummary out = a;
    out.count += b.count;
    if (b.arg >= 0 && (out.arg < 0 || b.max > out.max ||
                       (b.max == out.max && b.arg < out.arg))) {
      out.max = b.max;
      out.arg = b.arg;
    }
    return out;
  }
};

MaxSummary Leaf(int index, double value) {
  MaxSummary s;
  s.count = 1;
  s.max = value;
  s.arg = index;
  return s;
}

TEST(TournamentTreeTest, EmptyTreeHoldsIdentityRoot) {
  TournamentTree<MaxSummary> tree;
  EXPECT_EQ(tree.num_leaves(), 0);
  EXPECT_EQ(tree.Root().count, 0);
  EXPECT_EQ(tree.Root().arg, -1);
}

TEST(TournamentTreeTest, BulkBuildMatchesReduceTree) {
  Rng rng(7);
  for (int n : {1, 2, 3, 5, 8, 13, 64, 100}) {
    std::vector<MaxSummary> leaves;
    for (int i = 0; i < n; ++i) {
      leaves.push_back(Leaf(i, rng.UniformInt(0, 20)));  // many exact ties
    }
    TournamentTree<MaxSummary> tree;
    tree.Assign(leaves);
    const MaxSummary expected = ReduceTree(leaves, MaxSummary::Merge);
    EXPECT_EQ(tree.Root().count, n);
    EXPECT_EQ(tree.Root().max, expected.max) << "n=" << n;
    EXPECT_EQ(tree.Root().arg, expected.arg) << "n=" << n;
  }
}

/// The load-bearing property: a long random sequence of single-leaf
/// updates must leave the root exactly where a from-scratch rebuild puts
/// it — incremental replay can never drift from the bulk build.
TEST(TournamentTreeTest, IncrementalUpdatesMatchRebuild) {
  Rng rng(42);
  constexpr int kLeaves = 37;  // not a power of two: exercises padding
  std::vector<MaxSummary> leaves;
  for (int i = 0; i < kLeaves; ++i) {
    leaves.push_back(Leaf(i, rng.UniformInt(0, 9)));
  }
  TournamentTree<MaxSummary> tree;
  tree.Assign(leaves);
  for (int step = 0; step < 2000; ++step) {
    const int slot = rng.UniformInt(0, kLeaves - 1);
    if (rng.UniformInt(0, 4) == 0) {
      leaves[slot] = MaxSummary();  // clear to identity ("retired")
    } else {
      leaves[slot] = Leaf(slot, rng.UniformInt(0, 9));
    }
    tree.Update(slot, leaves[slot]);

    TournamentTree<MaxSummary> rebuilt;
    rebuilt.Assign(leaves);
    ASSERT_EQ(tree.Root().count, rebuilt.Root().count) << "step " << step;
    ASSERT_EQ(tree.Root().max, rebuilt.Root().max) << "step " << step;
    ASSERT_EQ(tree.Root().arg, rebuilt.Root().arg) << "step " << step;
    // Every internal node must equal the merge of its children.
    for (int node = tree.leaf_begin() - 1; node >= 1; --node) {
      const MaxSummary expect =
          MaxSummary::Merge(tree.node(2 * node), tree.node(2 * node + 1));
      ASSERT_EQ(tree.node(node).count, expect.count);
      ASSERT_EQ(tree.node(node).max, expect.max);
      ASSERT_EQ(tree.node(node).arg, expect.arg);
    }
  }
}

/// Fixed shape: the root is a pure function of the leaf VALUES, never of
/// the update order that produced them.
TEST(TournamentTreeTest, RootIndependentOfUpdateOrder) {
  constexpr int kLeaves = 21;
  std::vector<MaxSummary> leaves;
  for (int i = 0; i < kLeaves; ++i) leaves.push_back(Leaf(i, (i * 7) % 10));

  TournamentTree<MaxSummary> forward;
  forward.Assign(std::vector<MaxSummary>(kLeaves));
  for (int i = 0; i < kLeaves; ++i) forward.Update(i, leaves[i]);

  TournamentTree<MaxSummary> backward;
  backward.Assign(std::vector<MaxSummary>(kLeaves));
  for (int i = kLeaves - 1; i >= 0; --i) backward.Update(i, leaves[i]);

  EXPECT_EQ(forward.Root().max, backward.Root().max);
  EXPECT_EQ(forward.Root().arg, backward.Root().arg);
  EXPECT_EQ(forward.Root().count, backward.Root().count);
}

TEST(TournamentTreeTest, TiesResolveToLowestIndex) {
  std::vector<MaxSummary> leaves;
  for (int i = 0; i < 9; ++i) leaves.push_back(Leaf(i, 5.0));
  TournamentTree<MaxSummary> tree;
  tree.Assign(leaves);
  EXPECT_EQ(tree.Root().arg, 0);
  tree.Update(0, MaxSummary());  // retire the winner
  EXPECT_EQ(tree.Root().arg, 1);
  tree.Update(4, Leaf(4, 6.0));
  EXPECT_EQ(tree.Root().arg, 4);
}

}  // namespace
}  // namespace easeml
