#include "platform/dsl_parser.h"

#include <gtest/gtest.h>

#include <cctype>
#include <string>

namespace easeml::platform {
namespace {

TEST(DslParserTest, ParsesImageClassificationProgram) {
  auto p = ParseProgram(
      "{input: {[Tensor[256,256,3]], []}, output: {[Tensor[1000]], []}}");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_EQ(p->input.nonrec_fields.size(), 1u);
  EXPECT_EQ(p->input.nonrec_fields[0].shape.dims,
            (std::vector<int>{256, 256, 3}));
  EXPECT_TRUE(p->input.rec_fields.empty());
  EXPECT_EQ(p->output.nonrec_fields[0].shape.dims, (std::vector<int>{1000}));
}

TEST(DslParserTest, ParsesTimeSeriesProgramWithRecursiveFields) {
  auto p = ParseProgram(
      "{input: {[Tensor[10]], [next]}, output: {[Tensor[10]], [next]}}");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_EQ(p->input.rec_fields, (std::vector<std::string>{"next"}));
  EXPECT_EQ(p->output.rec_fields, (std::vector<std::string>{"next"}));
}

TEST(DslParserTest, ParsesNamedFields) {
  auto p = ParseProgram(
      "{input: {[img :: Tensor[28,28]], []}, output: {[Tensor[10]], []}}");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_EQ(p->input.nonrec_fields[0].name, "img");
  EXPECT_EQ(p->input.nonrec_fields[0].shape.dims, (std::vector<int>{28, 28}));
}

TEST(DslParserTest, ParsesMultipleFields) {
  auto dt = ParseDataType("{[Tensor[3], aux :: Tensor[7]], [left, right]}");
  ASSERT_TRUE(dt.ok()) << dt.status().ToString();
  EXPECT_EQ(dt->nonrec_fields.size(), 2u);
  EXPECT_EQ(dt->nonrec_fields[1].name, "aux");
  EXPECT_EQ(dt->rec_fields, (std::vector<std::string>{"left", "right"}));
}

TEST(DslParserTest, WhitespaceInsensitive) {
  auto p = ParseProgram(
      "  {  input :\n {[ Tensor[ 4 , 4 ] ] , [ ] },\n"
      "  output : {[Tensor[2]],[]} } ");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_EQ(p->input.nonrec_fields[0].shape.dims, (std::vector<int>{4, 4}));
}

TEST(DslParserTest, RoundTripsThroughToString) {
  const std::string text =
      "{input: {[img :: Tensor[10]], [next]}, output: {[Tensor[10]], [next]}}";
  auto p = ParseProgram(text);
  ASSERT_TRUE(p.ok());
  auto p2 = ParseProgram(p->ToString());
  ASSERT_TRUE(p2.ok()) << p2.status().ToString();
  EXPECT_EQ(*p, *p2);
}

struct BadInput {
  const char* text;
  const char* why;
};

class DslParserRejectionTest : public ::testing::TestWithParam<BadInput> {};

TEST_P(DslParserRejectionTest, RejectsMalformedInput) {
  auto p = ParseProgram(GetParam().text);
  EXPECT_FALSE(p.ok()) << GetParam().why;
  EXPECT_EQ(p.status().code(), StatusCode::kInvalidArgument);
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, DslParserRejectionTest,
    ::testing::Values(
        BadInput{"", "empty input"},
        BadInput{"{input: {[Tensor[3]], []}}", "missing output"},
        BadInput{"{output: {[Tensor[3]], []}, input: {[Tensor[3]], []}}",
                 "wrong key order"},
        BadInput{"{input: {[Tensor[]], []}, output: {[Tensor[3]], []}}",
                 "empty tensor dims"},
        BadInput{"{input: {[Tensor[3]], []}, output: {[Tensor[3]], []}} x",
                 "trailing characters"},
        BadInput{"{input: {[Tensor[3], []}, output: {[Tensor[3]], []}}",
                 "unbalanced brackets"},
        BadInput{"{input: {[Tensor[3]], [Next]}, output: {[Tensor[3]], []}}",
                 "uppercase field name"},
        BadInput{"{input: {[Tensor[-3]], []}, output: {[Tensor[3]], []}}",
                 "negative dimension"},
        BadInput{"{input: {[Tensor[9999999999]], []}, output: "
                 "{[Tensor[3]], []}}",
                 "dimension overflow"},
        BadInput{"{input: {[], []}, output: {[Tensor[3]], []}}",
                 "no fields on input"}),
    [](const ::testing::TestParamInfo<BadInput>& info) {
      // Name tests after the rejection reason; the default printer would
      // hex-dump the struct (pointers included), making names unstable.
      std::string name = info.param.why;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(DslParserTest, ErrorMessagesCarryOffset) {
  auto p = ParseProgram("{input: ???");
  ASSERT_FALSE(p.ok());
  EXPECT_NE(p.status().message().find("offset"), std::string::npos);
}

}  // namespace
}  // namespace easeml::platform
