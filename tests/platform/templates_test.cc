#include "platform/templates.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "platform/dsl_parser.h"

namespace easeml::platform {
namespace {

Program Parse(const std::string& text) {
  auto p = ParseProgram(text);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return std::move(p).value();
}

TEST(TemplatesTest, ImageClassification) {
  auto match = MatchTemplates(Parse(
      "{input: {[Tensor[256,256,3]], []}, output: {[Tensor[3]], []}}"));
  ASSERT_TRUE(match.ok());
  EXPECT_EQ(match->workload, WorkloadType::kImageClassification);
  EXPECT_EQ(match->candidate_models.size(), 8u);
  EXPECT_NE(std::find(match->candidate_models.begin(),
                      match->candidate_models.end(), "ResNet-50"),
            match->candidate_models.end());
}

TEST(TemplatesTest, ImageRecovery) {
  auto match = MatchTemplates(Parse(
      "{input: {[Tensor[64,64,3]], []}, output: {[Tensor[64,64,3]], []}}"));
  ASSERT_TRUE(match.ok());
  EXPECT_EQ(match->workload, WorkloadType::kImageRecovery);
  EXPECT_EQ(match->candidate_models,
            (std::vector<std::string>{"Auto-encoder", "GAN", "pix2pix"}));
}

TEST(TemplatesTest, TimeSeriesClassification) {
  auto match = MatchTemplates(
      Parse("{input: {[Tensor[10]], [next]}, output: {[Tensor[4]], []}}"));
  ASSERT_TRUE(match.ok());
  EXPECT_EQ(match->workload, WorkloadType::kTimeSeriesClassification);
  EXPECT_EQ(match->candidate_models.size(), 4u);  // RNN/LSTM/bi-LSTM/GRU
}

TEST(TemplatesTest, TimeSeriesTranslation) {
  auto match = MatchTemplates(Parse(
      "{input: {[Tensor[10]], [next]}, output: {[Tensor[10]], [next]}}"));
  ASSERT_TRUE(match.ok());
  EXPECT_EQ(match->workload, WorkloadType::kTimeSeriesTranslation);
  EXPECT_EQ(match->candidate_models, (std::vector<std::string>{"seq2seq"}));
}

TEST(TemplatesTest, TreeClassification) {
  auto match = MatchTemplates(Parse(
      "{input: {[Tensor[16]], [left, right]}, output: {[Tensor[2]], []}}"));
  ASSERT_TRUE(match.ok());
  EXPECT_EQ(match->workload, WorkloadType::kTreeClassification);
}

TEST(TemplatesTest, GeneralClassificationFallback) {
  // Rank-2 input matches nothing specific but ends in a classification.
  auto match = MatchTemplates(
      Parse("{input: {[Tensor[5,5]], []}, output: {[Tensor[2]], []}}"));
  ASSERT_TRUE(match.ok());
  EXPECT_EQ(match->workload, WorkloadType::kGeneralClassification);
  EXPECT_EQ(match->candidate_models,
            (std::vector<std::string>{"Bit-level-RNN"}));
}

TEST(TemplatesTest, GeneralAutoEncoderIsLastResort) {
  auto match = MatchTemplates(
      Parse("{input: {[Tensor[5,5]], []}, output: {[Tensor[2,2]], []}}"));
  ASSERT_TRUE(match.ok());
  EXPECT_EQ(match->workload, WorkloadType::kGeneralAutoEncoder);
}

TEST(TemplatesTest, MatchingOrderPrefersSpecificTemplates) {
  // A rank-3 -> rank-1 program matches both image classification (row 1)
  // and general classification (row 6); the specific row must win.
  auto match = MatchTemplates(
      Parse("{input: {[Tensor[8,8,3]], []}, output: {[Tensor[2]], []}}"));
  ASSERT_TRUE(match.ok());
  EXPECT_EQ(match->workload, WorkloadType::kImageClassification);
}

TEST(TemplatesTest, TimeSeriesTailWildcardAllowsExtraTensors) {
  // {[Tensor[A], *], [a]}: extra tensor fields after the first are fine.
  auto match = MatchTemplates(Parse(
      "{input: {[Tensor[10], Tensor[3,3]], [next]}, "
      "output: {[Tensor[4]], []}}"));
  ASSERT_TRUE(match.ok());
  EXPECT_EQ(match->workload, WorkloadType::kTimeSeriesClassification);
}

TEST(TemplatesTest, AllTemplateRowsHaveModels) {
  for (const auto& t : BuiltinTemplates()) {
    EXPECT_FALSE(t.candidate_models.empty())
        << WorkloadTypeName(t.workload);
  }
  EXPECT_EQ(BuiltinTemplates().size(), 7u);  // Figure 4 has seven rows
}

TEST(TemplatesTest, WorkloadNamesAreDistinct) {
  std::set<std::string> names;
  for (const auto& t : BuiltinTemplates()) {
    names.insert(WorkloadTypeName(t.workload));
  }
  EXPECT_EQ(names.size(), 7u);
}

TEST(SidePatternTest, ExactTensorCountWithoutWildcard) {
  SidePattern p{{3}, false, 0, false};
  DataType one_rank3;
  one_rank3.nonrec_fields.push_back({"", {{4, 4, 3}}});
  EXPECT_TRUE(p.Matches(one_rank3));
  one_rank3.nonrec_fields.push_back({"", {{4}}});
  EXPECT_FALSE(p.Matches(one_rank3));  // extra tensor, no wildcard
}

TEST(SidePatternTest, RecWildcardAcceptsAnyCount) {
  SidePattern p{{}, true, 0, true};
  DataType dt;
  dt.nonrec_fields.push_back({"", {{4}}});
  dt.rec_fields = {"a", "b", "c"};
  EXPECT_TRUE(p.Matches(dt));
}

}  // namespace
}  // namespace easeml::platform
