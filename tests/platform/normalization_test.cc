#include "platform/normalization.h"

#include <gtest/gtest.h>

#include <cmath>

namespace easeml::platform {
namespace {

TEST(NormalizationTest, CreateRejectsNonPositiveK) {
  EXPECT_FALSE(NormalizationFunction::Create(0.0).ok());
  EXPECT_FALSE(NormalizationFunction::Create(-1.0).ok());
  EXPECT_TRUE(NormalizationFunction::Create(0.2).ok());
}

TEST(NormalizationTest, MatchesFormula) {
  auto f = NormalizationFunction::Create(0.5);
  ASSERT_TRUE(f.ok());
  // f_k(x) = -x^{2k} + x^k with k = 0.5: f(0.25) = -0.25 + 0.5 = 0.25.
  EXPECT_NEAR(f->Apply(0.25), 0.25, 1e-12);
  EXPECT_DOUBLE_EQ(f->Apply(0.0), 0.0);
  EXPECT_NEAR(f->Apply(1.0), 0.0, 1e-12);
}

TEST(NormalizationTest, PeakAtClosedFormLocation) {
  for (double k : {0.2, 0.4, 0.6, 0.8, 1.0}) {
    auto f = NormalizationFunction::Create(k);
    ASSERT_TRUE(f.ok());
    const double x_star = f->PeakLocation();
    EXPECT_NEAR(x_star, std::pow(0.5, 1.0 / k), 1e-12);
    // The peak value of f is 1/4; scaled peak is 1.
    EXPECT_NEAR(f->Apply(x_star), 0.25, 1e-12);
    EXPECT_NEAR(f->ApplyScaled(x_star), 1.0, 1e-12);
    // Neighbors are below the peak.
    EXPECT_LT(f->Apply(x_star - 0.05), 0.25);
    EXPECT_LT(f->Apply(x_star + 0.05), 0.25);
  }
}

TEST(NormalizationTest, ClampsInputOutsideUnitInterval) {
  auto f = NormalizationFunction::Create(0.4);
  ASSERT_TRUE(f.ok());
  EXPECT_DOUBLE_EQ(f->Apply(-5.0), f->Apply(0.0));
  EXPECT_DOUBLE_EQ(f->Apply(7.0), f->Apply(1.0));
}

TEST(NormalizationTest, NormalizeVectorRescalesRange) {
  auto f = NormalizationFunction::Create(0.2);
  ASSERT_TRUE(f.ok());
  // Values spanning ten orders of magnitude (the astrophysics case).
  const std::vector<double> values = {1.0, 1e5, 1e10};
  const std::vector<double> out = f->NormalizeVector(values);
  ASSERT_EQ(out.size(), 3u);
  for (double v : out) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
  // The minimum maps to f(0) = 0 and the maximum to f(1) = 0.
  EXPECT_NEAR(out[0], 0.0, 1e-12);
  EXPECT_NEAR(out[2], 0.0, 1e-9);
  EXPECT_GT(out[1], 0.0);  // interior value is boosted
}

TEST(NormalizationTest, NormalizeVectorConstantInput) {
  auto f = NormalizationFunction::Create(0.4);
  ASSERT_TRUE(f.ok());
  const std::vector<double> out = f->NormalizeVector({3.0, 3.0});
  EXPECT_DOUBLE_EQ(out[0], out[1]);
  EXPECT_TRUE(f->NormalizeVector({}).empty());
}

TEST(NormalizationTest, DefaultGridMatchesFigure5) {
  EXPECT_EQ(DefaultNormalizationGrid(),
            (std::vector<double>{0.2, 0.4, 0.6, 0.8}));
}

TEST(CandidateModelTest, DisplayName) {
  CandidateModel plain{"ResNet-50", false, 0.0};
  EXPECT_EQ(plain.DisplayName(), "ResNet-50");
  CandidateModel normalized{"ResNet-50", true, 0.2};
  EXPECT_EQ(normalized.DisplayName(), "ResNet-50@norm(k=0.2)");
}

TEST(ExpandWithNormalizationTest, OnePlainPlusOnePerK) {
  const auto candidates = ExpandWithNormalization({"A", "B"}, {0.2, 0.8});
  // Each base model: 1 plain + 2 normalized = 3; two models = 6.
  ASSERT_EQ(candidates.size(), 6u);
  int plain = 0, normalized = 0;
  for (const auto& c : candidates) {
    c.has_normalization ? ++normalized : ++plain;
  }
  EXPECT_EQ(plain, 2);
  EXPECT_EQ(normalized, 4);
}

}  // namespace
}  // namespace easeml::platform
