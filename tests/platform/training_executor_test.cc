#include "platform/training_executor.h"

#include <gtest/gtest.h>

namespace easeml::platform {
namespace {

ModelInfo ResNet() {
  return {"ResNet-50", WorkloadType::kImageClassification, 8200, 2015, 5.0,
          0.05};
}

ModelInfo SqueezeNet() {
  return {"SqueezeNet", WorkloadType::kImageClassification, 620, 2016, 0.5,
          -0.05};
}

SimulatedTrainingExecutor MakeExecutor(uint64_t seed = 1) {
  SimulatedTrainingExecutor::Options opts;
  opts.seed = seed;
  return SimulatedTrainingExecutor(opts);
}

TEST(ExecutorTest, ValidatesTaskProfile) {
  auto exec = MakeExecutor();
  const CandidateModel c{"ResNet-50", false, 0.0};
  TaskProfile bad;
  bad.difficulty = 1.5;
  EXPECT_FALSE(exec.Train(ResNet(), c, bad).ok());
  bad = TaskProfile();
  bad.num_examples = 0;
  EXPECT_FALSE(exec.Train(ResNet(), c, bad).ok());
  bad = TaskProfile();
  bad.dynamic_range = 0.5;
  EXPECT_FALSE(exec.Train(ResNet(), c, bad).ok());
}

TEST(ExecutorTest, RejectsCandidateModelMismatch) {
  auto exec = MakeExecutor();
  const CandidateModel c{"AlexNet", false, 0.0};
  EXPECT_FALSE(exec.Train(ResNet(), c, TaskProfile()).ok());
}

TEST(ExecutorTest, AccuracyInUnitIntervalAndClockAdvances) {
  auto exec = MakeExecutor();
  const CandidateModel c{"ResNet-50", false, 0.0};
  TaskProfile task;
  task.difficulty = 0.9;
  auto outcome = exec.Train(ResNet(), c, task);
  ASSERT_TRUE(outcome.ok());
  EXPECT_GE(outcome->accuracy, 0.0);
  EXPECT_LE(outcome->accuracy, 1.0);
  EXPECT_GT(outcome->duration, 0.0);
  EXPECT_DOUBLE_EQ(exec.clock(), outcome->duration);
}

TEST(ExecutorTest, MoreExamplesHelp) {
  const CandidateModel c{"ResNet-50", false, 0.0};
  TaskProfile few;
  few.difficulty = 0.9;
  few.num_examples = 20;
  TaskProfile many = few;
  many.num_examples = 20000;
  // Average over seeds to wash out lr-grid luck.
  double acc_few = 0, acc_many = 0;
  for (uint64_t s = 0; s < 10; ++s) {
    auto e1 = MakeExecutor(s);
    auto e2 = MakeExecutor(s + 100);
    acc_few += e1.Train(ResNet(), c, few)->accuracy;
    acc_many += e2.Train(ResNet(), c, many)->accuracy;
  }
  EXPECT_GT(acc_many, acc_few + 0.5);
}

TEST(ExecutorTest, WideRangeWithoutNormalizationIsPenalized) {
  TaskProfile task;
  task.difficulty = 0.9;
  task.num_examples = 10000;
  task.dynamic_range = 1e10;  // the astrophysics case
  const CandidateModel raw{"ResNet-50", false, 0.0};
  const CandidateModel normalized{"ResNet-50", true, 0.2};
  double acc_raw = 0, acc_norm = 0;
  for (uint64_t s = 0; s < 10; ++s) {
    auto e1 = MakeExecutor(s);
    auto e2 = MakeExecutor(s + 50);
    acc_raw += e1.Train(ResNet(), raw, task)->accuracy;
    acc_norm += e2.Train(ResNet(), normalized, task)->accuracy;
  }
  EXPECT_GT(acc_norm, acc_raw + 0.3);
}

TEST(ExecutorTest, ImageLikeRangeNeedsNoNormalization) {
  TaskProfile task;
  task.difficulty = 0.9;
  task.num_examples = 10000;
  task.dynamic_range = 100.0;
  const CandidateModel raw{"ResNet-50", false, 0.0};
  auto exec = MakeExecutor(3);
  auto outcome = exec.Train(ResNet(), raw, task);
  ASSERT_TRUE(outcome.ok());
  // difficulty * data_factor + offset ~ 0.93; no range penalty applies.
  EXPECT_GT(outcome->accuracy, 0.85);
}

TEST(ExecutorTest, DurationScalesWithModelCost) {
  TaskProfile task;
  auto exec = MakeExecutor();
  const CandidateModel cr{"ResNet-50", false, 0.0};
  const CandidateModel cs{"SqueezeNet", false, 0.0};
  auto slow = exec.Train(ResNet(), cr, task);
  auto fast = exec.Train(SqueezeNet(), cs, task);
  ASSERT_TRUE(slow.ok());
  ASSERT_TRUE(fast.ok());
  EXPECT_NEAR(slow->duration / fast->duration, 10.0, 1e-9);  // 5.0 / 0.5
}

TEST(ExecutorTest, DeterministicUnderSeed) {
  TaskProfile task;
  const CandidateModel c{"ResNet-50", false, 0.0};
  auto a = MakeExecutor(42).Train(ResNet(), c, task);
  auto b = MakeExecutor(42).Train(ResNet(), c, task);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->accuracy, b->accuracy);
}

}  // namespace
}  // namespace easeml::platform
