#include "platform/schema.h"

#include <gtest/gtest.h>

namespace easeml::platform {
namespace {

TEST(TensorShapeTest, RankAndElements) {
  TensorShape s{{256, 256, 3}};
  EXPECT_EQ(s.rank(), 3);
  EXPECT_EQ(s.NumElements(), 256LL * 256 * 3);
  EXPECT_EQ(s.ToString(), "Tensor[256,256,3]");
}

TEST(DataTypeTest, ToStringRendersBothParts) {
  DataType dt;
  dt.nonrec_fields.push_back({"img", {{10}}});
  dt.rec_fields.push_back("next");
  EXPECT_EQ(dt.ToString(), "{[img :: Tensor[10]], [next]}");
}

TEST(DataTypeTest, AnonymousFieldOmitsName) {
  DataType dt;
  dt.nonrec_fields.push_back({"", {{3}}});
  EXPECT_EQ(dt.ToString(), "{[Tensor[3]], []}");
}

TEST(ProgramTest, ValidatesCleanProgram) {
  Program p;
  p.input.nonrec_fields.push_back({"", {{256, 256, 3}}});
  p.output.nonrec_fields.push_back({"", {{3}}});
  EXPECT_TRUE(p.Validate().ok());
  EXPECT_EQ(p.ToString(),
            "{input: {[Tensor[256,256,3]], []}, output: {[Tensor[3]], []}}");
}

TEST(ProgramTest, RejectsEmptySide) {
  Program p;
  p.input.nonrec_fields.push_back({"", {{3}}});
  EXPECT_FALSE(p.Validate().ok());  // output empty
}

TEST(ProgramTest, RejectsBadDims) {
  Program p;
  p.input.nonrec_fields.push_back({"", {{0}}});
  p.output.nonrec_fields.push_back({"", {{3}}});
  EXPECT_FALSE(p.Validate().ok());

  p.input.nonrec_fields[0].shape.dims = {};
  EXPECT_FALSE(p.Validate().ok());
}

TEST(ProgramTest, RejectsBadFieldNames) {
  Program p;
  p.input.nonrec_fields.push_back({"BadName", {{3}}});  // uppercase
  p.output.nonrec_fields.push_back({"", {{3}}});
  EXPECT_FALSE(p.Validate().ok());

  p.input.nonrec_fields[0].name = "ok_name_1";
  EXPECT_TRUE(p.Validate().ok());
}

TEST(ProgramTest, RejectsDuplicateRecursiveFields) {
  Program p;
  p.input.nonrec_fields.push_back({"", {{3}}});
  p.input.rec_fields = {"next", "next"};
  p.output.nonrec_fields.push_back({"", {{3}}});
  EXPECT_FALSE(p.Validate().ok());
  p.input.rec_fields = {"next", "prev"};
  EXPECT_TRUE(p.Validate().ok());
}

TEST(ProgramTest, EqualityIsStructural) {
  Program a, b;
  a.input.nonrec_fields.push_back({"", {{3}}});
  a.output.nonrec_fields.push_back({"", {{2}}});
  b = a;
  EXPECT_EQ(a, b);
  b.output.nonrec_fields[0].shape.dims = {4};
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace easeml::platform
