#include "platform/service.h"

#include <gtest/gtest.h>

#include "wal/fault_injection.h"
#include "wal/recovery.h"

namespace easeml::platform {
namespace {

constexpr char kImageProgram[] =
    "{input: {[Tensor[256,256,3]], []}, output: {[Tensor[3]], []}}";
constexpr char kSeriesProgram[] =
    "{input: {[Tensor[10]], [next]}, output: {[Tensor[4]], []}}";

EaseMlService MakeService(uint64_t seed = 1) {
  EaseMlService::Options opts;
  opts.seed = seed;
  opts.selector.seed = seed;
  auto service = EaseMlService::Create(opts);
  EXPECT_TRUE(service.ok());
  return std::move(service).value();
}

TEST(ServiceTest, SubmitJobMatchesTemplates) {
  auto service = MakeService();
  auto job = service.SubmitJob(kImageProgram);
  ASSERT_TRUE(job.ok());
  EXPECT_EQ(*job, 0);
  auto candidates = service.Candidates(0);
  ASSERT_TRUE(candidates.ok());
  EXPECT_EQ(candidates->size(), 8u);  // eight CNNs, no normalization
}

TEST(ServiceTest, WideDynamicRangeExpandsNormalizationCandidates) {
  auto service = MakeService();
  auto job = service.SubmitJob(kImageProgram, /*dynamic_range=*/1e10);
  ASSERT_TRUE(job.ok());
  auto candidates = service.Candidates(*job);
  ASSERT_TRUE(candidates.ok());
  // 8 base models x (1 plain + 4 normalization ks).
  EXPECT_EQ(candidates->size(), 40u);
}

TEST(ServiceTest, SubmitJobRejectsBadProgram) {
  auto service = MakeService();
  EXPECT_FALSE(service.SubmitJob("not a program").ok());
  EXPECT_FALSE(service.SubmitJob(kImageProgram, 0.5).ok());
}

TEST(ServiceTest, FeedAndRefineLifecycle) {
  auto service = MakeService();
  ASSERT_TRUE(service.SubmitJob(kImageProgram).ok());
  EXPECT_FALSE(service.Feed(0, 0).ok());
  ASSERT_TRUE(service.Feed(0, 100).ok());
  auto examples = service.ListExamples(0);
  ASSERT_TRUE(examples.ok());
  EXPECT_EQ(examples->size(), 100u);
  // Disable one example.
  ASSERT_TRUE(service.Refine(0, 5, false).ok());
  examples = service.ListExamples(0);
  EXPECT_FALSE((*examples)[5].enabled);
  EXPECT_FALSE(service.Refine(0, 1000, false).ok());
  EXPECT_FALSE(service.Feed(7, 10).ok());  // unknown job
}

TEST(ServiceTest, InferRequiresAFinishedModel) {
  auto service = MakeService();
  ASSERT_TRUE(service.SubmitJob(kImageProgram).ok());
  ASSERT_TRUE(service.Feed(0, 500).ok());
  EXPECT_FALSE(service.Infer(0).ok());  // nothing trained yet
  auto task = service.Step();
  ASSERT_TRUE(task.ok()) << task.status().ToString();
  auto report = service.Infer(0);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->accuracy, 0.0);
  EXPECT_FALSE(report->model_name.empty());
  EXPECT_EQ(report->rounds_served, 1);
}

TEST(ServiceTest, StepSchedulesAcrossJobs) {
  auto service = MakeService(7);
  ASSERT_TRUE(service.SubmitJob(kImageProgram).ok());
  ASSERT_TRUE(service.SubmitJob(kSeriesProgram).ok());
  ASSERT_TRUE(service.Feed(0, 400).ok());
  ASSERT_TRUE(service.Feed(1, 400).ok());
  // The initialization sweep must give both tenants a model quickly.
  ASSERT_TRUE(service.Step().ok());
  ASSERT_TRUE(service.Step().ok());
  EXPECT_TRUE(service.Infer(0).ok());
  EXPECT_TRUE(service.Infer(1).ok());
  EXPECT_GT(service.ClusterTime(), 0.0);
}

TEST(ServiceTest, RunStepsStopsWhenExhausted) {
  auto service = MakeService(3);
  ASSERT_TRUE(service.SubmitJob(kSeriesProgram).ok());  // 4 candidates
  ASSERT_TRUE(service.Feed(0, 300).ok());
  auto taken = service.RunSteps(100);
  ASSERT_TRUE(taken.ok());
  EXPECT_EQ(*taken, 4);
  EXPECT_TRUE(service.Exhausted());
  EXPECT_FALSE(service.Step().ok());
}

TEST(ServiceTest, BestModelImprovesMonotonically) {
  auto service = MakeService(11);
  ASSERT_TRUE(service.SubmitJob(kImageProgram).ok());
  ASSERT_TRUE(service.Feed(0, 1000).ok());
  double best = 0.0;
  while (!service.Exhausted()) {
    ASSERT_TRUE(service.Step().ok());
    auto report = service.Infer(0);
    ASSERT_TRUE(report.ok());
    EXPECT_GE(report->accuracy, best - 1e-12);
    best = std::max(best, report->accuracy);
  }
}

TEST(ServiceTest, RefiningNoisyLabelsImprovesTraining) {
  // Two services with the same seed; one disables its noisy examples.
  EaseMlService::Options opts;
  opts.seed = 21;
  opts.noisy_label_fraction = 0.5;
  auto raw = EaseMlService::Create(opts);
  auto refined = EaseMlService::Create(opts);
  ASSERT_TRUE(raw.ok());
  ASSERT_TRUE(refined.ok());
  for (auto* svc : {&*raw, &*refined}) {
    ASSERT_TRUE(svc->SubmitJob(kImageProgram).ok());
    ASSERT_TRUE(svc->Feed(0, 100).ok());
  }
  // Refine away noisy labels in the second service... which in this
  // simulated world means effective examples shrink but the noisy discount
  // disappears; the refined service must not be worse on effective volume
  // per clean example. We assert the plumbing: disabling examples changes
  // the candidate outcome deterministically.
  auto examples = refined->ListExamples(0);
  ASSERT_TRUE(examples.ok());
  int disabled = 0;
  for (const auto& e : *examples) {
    if (e.noisy) {
      ASSERT_TRUE(refined->Refine(0, e.index, false).ok());
      ++disabled;
    }
  }
  EXPECT_GT(disabled, 20);  // ~50% of 100
  ASSERT_TRUE(raw->Step().ok());
  ASSERT_TRUE(refined->Step().ok());
  EXPECT_TRUE(raw->Infer(0).ok());
  EXPECT_TRUE(refined->Infer(0).ok());
}

TEST(ServiceTest, ShardedEngineReplaysSequentialServiceBitIdentically) {
  // The num_shards service option swaps the selector engine under the
  // whole platform stack (task pool, async executor, RunAsync drain); the
  // end-to-end outcome must not change in any digit.
  auto run = [](int num_shards) {
    EaseMlService::Options opts;
    opts.seed = 5;
    opts.selector.seed = 5;
    opts.selector.num_devices = 3;
    opts.selector.num_shards = num_shards;
    auto service = EaseMlService::Create(opts);
    EXPECT_TRUE(service.ok());
    for (int j = 0; j < 6; ++j) {
      EXPECT_TRUE(service->SubmitJob(kImageProgram).ok());
      EXPECT_TRUE(service->Feed(j, 60 + 13 * j).ok());
    }
    auto report = service->RunAsync(/*num_workers=*/1);
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    std::vector<InferReport> infers;
    for (int j = 0; j < 6; ++j) {
      auto infer = service->Infer(j);
      EXPECT_TRUE(infer.ok());
      infers.push_back(*infer);
    }
    return infers;
  };
  const std::vector<InferReport> sequential = run(1);
  for (int shards : {2, 5}) {
    const std::vector<InferReport> sharded = run(shards);
    ASSERT_EQ(sequential.size(), sharded.size());
    for (size_t j = 0; j < sequential.size(); ++j) {
      EXPECT_EQ(sequential[j].model_name, sharded[j].model_name);
      EXPECT_EQ(sequential[j].accuracy, sharded[j].accuracy);  // exact
      EXPECT_EQ(sequential[j].rounds_served, sharded[j].rounds_served);
    }
  }
}

TEST(ServiceTest, WalBackedServiceTrafficIsRecoverable) {
  // The full platform stack (DSL parse, template match, Step scheduling)
  // running over a WAL-wired selector: every Next/Report the service
  // drives lands in the log, and after a simulated kill OpenOrRecover
  // rebuilds a selector with the same fleet.
  wal::FaultInjectingFileSystem fs;
  core::SelectorOptions sel_opts;
  sel_opts.seed = 5;
  {
    auto recovered = wal::OpenOrRecover(&fs, "/svc", sel_opts);
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    EaseMlService::Options opts;
    opts.seed = 5;
    opts.selector = sel_opts;
    {
      auto service = EaseMlService::CreateWithSelector(
          opts, std::move(recovered->selector));
      ASSERT_TRUE(service.ok()) << service.status().ToString();
      ASSERT_TRUE(service->SubmitJob(kImageProgram).ok());
      ASSERT_TRUE(service->SubmitJob(kSeriesProgram).ok());
      ASSERT_TRUE(service->Feed(0, 200).ok());
      ASSERT_TRUE(service->Feed(1, 200).ok());
      auto taken = service->RunSteps(10);
      ASSERT_TRUE(taken.ok()) << taken.status().ToString();
      EXPECT_EQ(*taken, 10);
    }
    // Selector (service) destroyed before the WAL it writes to; the WAL
    // handle closes when `recovered` leaves scope — a process kill as far
    // as the in-memory filesystem is concerned.
  }
  auto reopened = wal::OpenOrRecover(&fs, "/svc", sel_opts);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_FALSE(reopened->stats.used_checkpoint);
  EXPECT_GT(reopened->stats.replayed_records, 0);
  EXPECT_EQ(reopened->selector->num_tenants(), 2);
  EXPECT_TRUE(reopened->selector->ValidateIndex().ok());
  auto state = reopened->selector->CaptureDurableState();
  ASSERT_TRUE(state.ok());
  // Step() reports synchronously, so no ticket was open at the kill.
  EXPECT_TRUE(state->in_flight.empty());
}

}  // namespace
}  // namespace easeml::platform
