/// Concurrency battery for `platform::AsyncTrainingExecutor` and the
/// end-to-end `EaseMlService::RunAsync` pipeline. The stress tests hammer
/// the pool from multiple producer threads with jittered task durations —
/// run them under the TSan tier-1 leg (`scripts/tier1.sh tsan`) to race
/// the queue, completion, and shutdown paths.
#include "platform/async_executor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "platform/service.h"

namespace easeml::platform {
namespace {

constexpr char kImageProgram[] =
    "{input: {[Tensor[256,256,3]], []}, output: {[Tensor[3]], []}}";

ModelInfo AnyModel() {
  auto info = ModelRegistry::Builtin().Find("ResNet-50");
  EXPECT_TRUE(info.ok());
  return *info;
}

AsyncTrainingJob MakeJob(int64_t id, const ModelInfo& model,
                         double num_examples = 500.0) {
  AsyncTrainingJob job;
  job.job_id = id;
  job.model = model;
  job.candidate = CandidateModel{model.name, false, 0.0};
  job.profile.difficulty = 0.8;
  job.profile.num_examples = num_examples;
  job.profile.dynamic_range = 100.0;
  return job;
}

std::unique_ptr<AsyncTrainingExecutor> MakePool(int workers,
                                                double dilation = 0.0) {
  AsyncTrainingExecutor::Options opts;
  opts.num_workers = workers;
  opts.executor.seed = 7;
  opts.seconds_per_cost_unit = dilation;
  auto pool = AsyncTrainingExecutor::Create(opts);
  EXPECT_TRUE(pool.ok());
  return std::move(pool).value();
}

TEST(AsyncExecutorTest, CreateValidatesOptions) {
  AsyncTrainingExecutor::Options opts;
  opts.num_workers = 0;
  EXPECT_FALSE(AsyncTrainingExecutor::Create(opts).ok());
  opts.num_workers = 2;
  opts.seconds_per_cost_unit = -1.0;
  EXPECT_FALSE(AsyncTrainingExecutor::Create(opts).ok());
}

TEST(AsyncExecutorTest, CompletionsArriveExactlyOnce) {
  const ModelInfo model = AnyModel();
  auto pool = MakePool(4);
  constexpr int kJobs = 64;
  for (int i = 0; i < kJobs; ++i) {
    ASSERT_TRUE(pool->Submit(MakeJob(i, model)).ok());
  }
  std::set<int64_t> seen;
  for (int i = 0; i < kJobs; ++i) {
    auto done = pool->WaitCompletion();
    ASSERT_TRUE(done.ok());
    ASSERT_TRUE(done->status.ok()) << done->status.ToString();
    EXPECT_TRUE(seen.insert(done->job_id).second)
        << "duplicate completion for job " << done->job_id;
    EXPECT_GE(done->worker, 0);
    EXPECT_LT(done->worker, 4);
    EXPECT_GE(done->outcome.accuracy, 0.0);
    EXPECT_LE(done->outcome.accuracy, 1.0);
    EXPECT_GT(done->outcome.duration, 0.0);
  }
  EXPECT_EQ(seen.size(), static_cast<size_t>(kJobs));
  EXPECT_EQ(pool->outstanding(), 0);
  EXPECT_FALSE(pool->WaitCompletion().ok());  // drained
  EXPECT_GT(pool->SimulatedBusyTime(), 0.0);
  EXPECT_GE(pool->SimulatedBusyTime(), pool->SimulatedMakespan());
}

TEST(AsyncExecutorTest, PerJobTrainErrorsArePropagatedNotFatal) {
  const ModelInfo model = AnyModel();
  auto pool = MakePool(2);
  AsyncTrainingJob bad = MakeJob(1, model);
  bad.profile.num_examples = -5.0;  // Train() rejects this profile
  ASSERT_TRUE(pool->Submit(bad).ok());
  ASSERT_TRUE(pool->Submit(MakeJob(2, model)).ok());
  int failed = 0, succeeded = 0;
  for (int i = 0; i < 2; ++i) {
    auto done = pool->WaitCompletion();
    ASSERT_TRUE(done.ok());
    if (done->status.ok()) {
      ++succeeded;
    } else {
      ++failed;
      EXPECT_EQ(done->job_id, 1);
    }
  }
  EXPECT_EQ(failed, 1);
  EXPECT_EQ(succeeded, 1);
}

TEST(AsyncExecutorTest, ShutdownDrainsQueuedJobs) {
  const ModelInfo model = AnyModel();
  auto pool = MakePool(2);
  constexpr int kJobs = 32;
  for (int i = 0; i < kJobs; ++i) {
    ASSERT_TRUE(pool->Submit(MakeJob(i, model)).ok());
  }
  pool->Shutdown();  // must process everything already queued
  EXPECT_FALSE(pool->Submit(MakeJob(99, model)).ok());
  int drained = 0;
  while (auto done = pool->TryNextCompletion()) {
    EXPECT_TRUE(done->status.ok());
    ++drained;
  }
  EXPECT_EQ(drained, kJobs);
}

TEST(AsyncExecutorTest, SingleWorkerIsDeterministic) {
  const ModelInfo model = AnyModel();
  std::vector<double> accuracies[2];
  for (int run = 0; run < 2; ++run) {
    auto pool = MakePool(1);
    for (int i = 0; i < 16; ++i) {
      ASSERT_TRUE(pool->Submit(MakeJob(i, model, 100.0 + 40.0 * i)).ok());
    }
    for (int i = 0; i < 16; ++i) {
      auto done = pool->WaitCompletion();
      ASSERT_TRUE(done.ok());
      ASSERT_TRUE(done->status.ok());
      EXPECT_EQ(done->job_id, i);  // FIFO with one worker
      accuracies[run].push_back(done->outcome.accuracy);
    }
  }
  EXPECT_EQ(accuracies[0], accuracies[1]);  // bit-identical RNG streams
}

TEST(AsyncExecutorStressTest, ConcurrentProducersAndJitteredDurations) {
  const ModelInfo model = AnyModel();
  // Small real-time dilation so runs genuinely overlap and finish out of
  // submission order; durations are jittered through the example count.
  auto pool = MakePool(4, /*dilation=*/2e-7);
  constexpr int kProducers = 3;
  constexpr int kJobsPerProducer = 40;
  std::atomic<int> submit_failures{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kJobsPerProducer; ++i) {
        const int64_t id = p * kJobsPerProducer + i;
        const double jitter = 50.0 + 97.0 * ((id * 13) % 23);
        if (!pool->Submit(MakeJob(id, model, jitter)).ok()) {
          ++submit_failures;
        }
      }
    });
  }
  // Drain from the main thread while producers are still submitting. A
  // fast consumer can transiently observe an empty pool (nothing
  // outstanding between two submissions) — that surfaces as a clean
  // FailedPrecondition, not a hang, and the drain simply retries.
  std::set<int64_t> seen;
  bool bad_completion = false;
  while (seen.size() < static_cast<size_t>(kProducers * kJobsPerProducer)) {
    auto done = pool->WaitCompletion();
    if (!done.ok()) {
      std::this_thread::yield();
      continue;
    }
    bad_completion |= !done->status.ok() || !seen.insert(done->job_id).second;
  }
  for (auto& t : producers) t.join();
  EXPECT_FALSE(bad_completion) << "failed or duplicate completion";
  EXPECT_EQ(submit_failures.load(), 0);
  EXPECT_EQ(seen.size(),
            static_cast<size_t>(kProducers * kJobsPerProducer));
  EXPECT_EQ(pool->outstanding(), 0);
}

TEST(AsyncExecutorStressTest, ShutdownRacesActiveWorkers) {
  const ModelInfo model = AnyModel();
  for (int round = 0; round < 8; ++round) {
    auto pool = MakePool(3, /*dilation=*/1e-7);
    for (int i = 0; i < 12; ++i) {
      ASSERT_TRUE(pool->Submit(MakeJob(i, model, 200.0 + 50.0 * i)).ok());
    }
    // Destructor-driven shutdown must drain and join without losing a job.
    pool->Shutdown();
    int drained = 0;
    while (pool->TryNextCompletion()) ++drained;
    EXPECT_EQ(drained, 12);
  }
}

TEST(AsyncServiceTest, RunAsyncDrivesTaskPoolToDone) {
  EaseMlService::Options opts;
  opts.seed = 3;
  opts.selector.seed = 3;
  opts.selector.num_devices = 4;
  auto service = EaseMlService::Create(opts);
  ASSERT_TRUE(service.ok());
  for (int j = 0; j < 3; ++j) {
    ASSERT_TRUE(service->SubmitJob(kImageProgram).ok());
    ASSERT_TRUE(service->Feed(j, 200 + 100 * j).ok());
  }
  auto report = service->RunAsync();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(service->Exhausted());
  EXPECT_EQ(report->num_workers, 4);
  EXPECT_EQ(report->steps, 24);  // 3 jobs x 8 CNN candidates
  EXPECT_GT(report->simulated_busy_time, 0.0);
  EXPECT_GE(report->simulated_busy_time, report->simulated_makespan);
  for (int j = 0; j < 3; ++j) {
    auto infer = service->Infer(j);
    ASSERT_TRUE(infer.ok());
    EXPECT_GT(infer->accuracy, 0.0);
    EXPECT_EQ(infer->rounds_served, 8);
  }
}

TEST(AsyncServiceTest, SingleDeviceRunAsyncMatchesSequentialStepLoop) {
  // The end-to-end determinism claim: with one device and one worker the
  // async pipeline consumes the exact RNG stream of the sequential Step
  // loop, so every task's accuracy and duration is bit-identical.
  EaseMlService::Options opts;
  opts.seed = 11;
  opts.selector.seed = 11;
  auto sequential = EaseMlService::Create(opts);
  auto async = EaseMlService::Create(opts);
  ASSERT_TRUE(sequential.ok());
  ASSERT_TRUE(async.ok());
  for (auto* service : {&*sequential, &*async}) {
    ASSERT_TRUE(service->SubmitJob(kImageProgram).ok());
    ASSERT_TRUE(service->SubmitJob(kImageProgram).ok());
    ASSERT_TRUE(service->Feed(0, 300).ok());
    ASSERT_TRUE(service->Feed(1, 700).ok());
  }
  int sequential_steps = 0;
  while (!sequential->Exhausted()) {
    ASSERT_TRUE(sequential->Step().ok());
    ++sequential_steps;
  }
  auto report = async->RunAsync();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->steps, sequential_steps);
  for (int task = 0; task < 16; ++task) {
    auto a = sequential->TaskInfo(task);
    auto b = async->TaskInfo(task);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->state, TaskState::kDone);
    EXPECT_EQ(b->state, TaskState::kDone);
    EXPECT_EQ(a->accuracy, b->accuracy);  // bit-identical
    EXPECT_EQ(a->duration, b->duration);
  }
}

}  // namespace
}  // namespace easeml::platform
