#include <gtest/gtest.h>

#include "platform/model_registry.h"
#include "platform/task_pool.h"

namespace easeml::platform {
namespace {

TEST(ModelRegistryTest, BuiltinCoversAllTemplateModels) {
  const auto& registry = ModelRegistry::Builtin();
  for (const auto& t : BuiltinTemplates()) {
    for (const auto& name : t.candidate_models) {
      auto info = registry.Find(name);
      EXPECT_TRUE(info.ok()) << "missing metadata for " << name;
      if (info.ok()) {
        EXPECT_EQ(info->workload, t.workload) << name;
        EXPECT_GT(info->relative_cost, 0.0) << name;
        EXPECT_GT(info->citations_2017, 0) << name;
      }
    }
  }
}

TEST(ModelRegistryTest, FindUnknownFails) {
  EXPECT_FALSE(ModelRegistry::Builtin().Find("NoSuchNet").ok());
}

TEST(ModelRegistryTest, ForWorkloadFilters) {
  const auto image = ModelRegistry::Builtin().ForWorkload(
      WorkloadType::kImageClassification);
  EXPECT_EQ(image.size(), 8u);
  for (const auto& m : image) {
    EXPECT_EQ(m.workload, WorkloadType::kImageClassification);
  }
}

TEST(ModelRegistryTest, RegisterRejectsDuplicates) {
  ModelRegistry r;
  ModelInfo m{"net", WorkloadType::kImageClassification, 10, 2020, 1.0, 0.0};
  EXPECT_TRUE(r.Register(m).ok());
  EXPECT_FALSE(r.Register(m).ok());
  EXPECT_EQ(r.size(), 1);
}

TEST(TaskPoolTest, AddUserTasksAssignsSequentialIds) {
  TaskPool pool;
  auto ids = pool.AddUserTasks(0, {{"A", false, 0.0}, {"B", false, 0.0}});
  ASSERT_TRUE(ids.ok());
  EXPECT_EQ(*ids, (std::vector<int>{0, 1}));
  auto more = pool.AddUserTasks(1, {{"C", false, 0.0}});
  ASSERT_TRUE(more.ok());
  EXPECT_EQ(*more, (std::vector<int>{2}));
  EXPECT_EQ(pool.num_tasks(), 3);
}

TEST(TaskPoolTest, AddUserTasksValidates) {
  TaskPool pool;
  EXPECT_FALSE(pool.AddUserTasks(0, {}).ok());
  EXPECT_FALSE(pool.AddUserTasks(-1, {{"A", false, 0.0}}).ok());
}

TEST(TaskPoolTest, LifecycleTransitions) {
  TaskPool pool;
  auto ids = pool.AddUserTasks(0, {{"A", false, 0.0}});
  ASSERT_TRUE(ids.ok());
  const int id = (*ids)[0];
  // Done before running is illegal.
  EXPECT_FALSE(pool.MarkDone(id, 0.9, 1.0).ok());
  EXPECT_TRUE(pool.MarkRunning(id).ok());
  // Running twice is illegal.
  EXPECT_FALSE(pool.MarkRunning(id).ok());
  EXPECT_TRUE(pool.MarkDone(id, 0.9, 1.0).ok());
  auto task = pool.Get(id);
  ASSERT_TRUE(task.ok());
  EXPECT_EQ(task->state, TaskState::kDone);
  EXPECT_DOUBLE_EQ(task->accuracy, 0.9);
}

TEST(TaskPoolTest, RequeueReturnsARunningTaskToPending) {
  TaskPool pool;
  auto ids = pool.AddUserTasks(0, {{"A", false, 0.0}});
  ASSERT_TRUE(ids.ok());
  const int id = (*ids)[0];
  // Only running tasks can be requeued.
  EXPECT_FALSE(pool.Requeue(id).ok());
  ASSERT_TRUE(pool.MarkRunning(id).ok());
  EXPECT_TRUE(pool.Requeue(id).ok());
  auto task = pool.Get(id);
  ASSERT_TRUE(task.ok());
  EXPECT_EQ(task->state, TaskState::kPending);
  // The full lifecycle restarts cleanly after a requeue.
  EXPECT_TRUE(pool.MarkRunning(id).ok());
  EXPECT_TRUE(pool.MarkDone(id, 0.9, 1.0).ok());
  EXPECT_FALSE(pool.Requeue(id).ok());  // done tasks stay done
  EXPECT_FALSE(pool.Requeue(99).ok());  // unknown id
}

TEST(TaskPoolTest, MarkDoneValidatesMetrics) {
  TaskPool pool;
  auto ids = pool.AddUserTasks(0, {{"A", false, 0.0}});
  ASSERT_TRUE(ids.ok());
  ASSERT_TRUE(pool.MarkRunning(0).ok());
  EXPECT_FALSE(pool.MarkDone(0, 1.5, 1.0).ok());
  EXPECT_FALSE(pool.MarkDone(0, 0.5, -1.0).ok());
  EXPECT_TRUE(pool.MarkDone(0, 0.5, 0.0).ok());
}

TEST(TaskPoolTest, QueriesByUserAndState) {
  TaskPool pool;
  ASSERT_TRUE(pool.AddUserTasks(0, {{"A", false, 0.0}, {"B", false, 0.0}})
                  .ok());
  ASSERT_TRUE(pool.AddUserTasks(1, {{"C", false, 0.0}}).ok());
  ASSERT_TRUE(pool.MarkRunning(0).ok());
  ASSERT_TRUE(pool.MarkDone(0, 0.7, 2.0).ok());
  EXPECT_EQ(pool.PendingForUser(0).size(), 1u);
  EXPECT_EQ(pool.TasksForUser(0).size(), 2u);
  EXPECT_EQ(pool.CountInState(TaskState::kDone), 1);
  EXPECT_EQ(pool.CountInState(TaskState::kPending), 2);
}

TEST(TaskPoolTest, BestForUserTracksHighestAccuracy) {
  TaskPool pool;
  ASSERT_TRUE(pool.AddUserTasks(0, {{"A", false, 0.0}, {"B", false, 0.0}})
                  .ok());
  EXPECT_FALSE(pool.BestForUser(0).ok());  // nothing finished
  ASSERT_TRUE(pool.MarkRunning(0).ok());
  ASSERT_TRUE(pool.MarkDone(0, 0.6, 1.0).ok());
  ASSERT_TRUE(pool.MarkRunning(1).ok());
  ASSERT_TRUE(pool.MarkDone(1, 0.8, 1.0).ok());
  auto best = pool.BestForUser(0);
  ASSERT_TRUE(best.ok());
  EXPECT_EQ(best->candidate.base_model, "B");
  EXPECT_FALSE(pool.BestForUser(9).ok());
}

TEST(TaskPoolTest, GetValidatesId) {
  TaskPool pool;
  EXPECT_FALSE(pool.Get(0).ok());
  EXPECT_FALSE(pool.MarkRunning(-1).ok());
}

}  // namespace
}  // namespace easeml::platform
