#include "core/experiment_runner.h"

#include <gtest/gtest.h>

#include "data/deeplearning.h"
#include "data/synthetic_generator.h"

namespace easeml::core {
namespace {

data::Dataset SmallSyn() {
  data::SimpleSynOptions opts;
  opts.num_users = 24;
  opts.num_models = 10;
  opts.sigma_m = 0.5;
  opts.alpha = 0.5;
  opts.seed = 5;
  auto ds = data::GenerateSimpleSyn(opts);
  EXPECT_TRUE(ds.ok());
  return std::move(ds).value();
}

ProtocolOptions FastOptions() {
  ProtocolOptions opts;
  opts.num_test_users = 5;
  opts.num_reps = 4;
  opts.budget_fraction = 0.5;
  opts.tune_hyperparameters = false;  // keep unit tests fast
  opts.grid_points = 21;
  opts.seed = 9;
  return opts;
}

TEST(StrategyNameTest, AllNamed) {
  for (StrategyKind k :
       {StrategyKind::kEaseMl, StrategyKind::kGreedy,
        StrategyKind::kRoundRobin, StrategyKind::kRandom, StrategyKind::kFcfs,
        StrategyKind::kMostCited, StrategyKind::kMostRecent}) {
    EXPECT_FALSE(StrategyName(k).empty());
    EXPECT_NE(StrategyName(k), "unknown");
  }
}

TEST(RunProtocolTest, ValidatesOptions) {
  const data::Dataset ds = SmallSyn();
  ProtocolOptions opts = FastOptions();
  opts.num_test_users = 0;
  EXPECT_FALSE(RunProtocol(ds, StrategyKind::kEaseMl, opts).ok());
  opts = FastOptions();
  opts.num_test_users = ds.num_users();
  EXPECT_FALSE(RunProtocol(ds, StrategyKind::kEaseMl, opts).ok());
  opts = FastOptions();
  opts.num_reps = 0;
  EXPECT_FALSE(RunProtocol(ds, StrategyKind::kEaseMl, opts).ok());
  opts = FastOptions();
  opts.kernel_train_fraction = 0.0;
  EXPECT_FALSE(RunProtocol(ds, StrategyKind::kEaseMl, opts).ok());
}

TEST(RunProtocolTest, HeuristicsNeedMetadata) {
  // SYN datasets have no citation metadata.
  const data::Dataset ds = SmallSyn();
  EXPECT_FALSE(RunProtocol(ds, StrategyKind::kMostCited, FastOptions()).ok());
  EXPECT_FALSE(
      RunProtocol(ds, StrategyKind::kMostRecent, FastOptions()).ok());
}

TEST(RunProtocolTest, ProducesWellFormedCurves) {
  auto result = RunProtocol(SmallSyn(), StrategyKind::kEaseMl, FastOptions());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->curves.grid.size(), 21u);
  EXPECT_EQ(result->curves.mean.size(), 21u);
  EXPECT_EQ(result->curves.worst.size(), 21u);
  for (size_t i = 0; i < 21; ++i) {
    EXPECT_GE(result->curves.worst[i], result->curves.mean[i] - 1e-12);
    if (i > 0) {
      // Each repetition's curve is non-increasing, so aggregates are too.
      EXPECT_LE(result->curves.mean[i], result->curves.mean[i - 1] + 1e-12);
    }
  }
  EXPECT_GT(result->mean_auc, 0.0);
  EXPECT_EQ(result->strategy_name, "ease.ml");
}

TEST(RunProtocolTest, DeterministicUnderSeed) {
  auto a = RunProtocol(SmallSyn(), StrategyKind::kRoundRobin, FastOptions());
  auto b = RunProtocol(SmallSyn(), StrategyKind::kRoundRobin, FastOptions());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->curves.mean, b->curves.mean);
  EXPECT_EQ(a->curves.worst, b->curves.worst);
}

TEST(RunProtocolTest, FullBudgetDrivesLossToZero) {
  ProtocolOptions opts = FastOptions();
  opts.budget_fraction = 1.0;
  for (StrategyKind kind : {StrategyKind::kEaseMl, StrategyKind::kRoundRobin,
                            StrategyKind::kRandom}) {
    auto result = RunProtocol(SmallSyn(), kind, opts);
    ASSERT_TRUE(result.ok());
    EXPECT_NEAR(result->curves.mean.back(), 0.0, 1e-9)
        << StrategyName(kind);
    EXPECT_NEAR(result->curves.worst.back(), 0.0, 1e-9)
        << StrategyName(kind);
  }
}

TEST(RunProtocolTest, HeuristicsRunOnDeepLearning) {
  auto ds = data::GenerateDeepLearning(data::DeepLearningOptions());
  ASSERT_TRUE(ds.ok());
  ProtocolOptions opts = FastOptions();
  opts.num_test_users = 6;
  for (StrategyKind kind :
       {StrategyKind::kMostCited, StrategyKind::kMostRecent}) {
    auto result = RunProtocol(*ds, kind, opts);
    ASSERT_TRUE(result.ok()) << StrategyName(kind);
    // Heuristics make progress too — loss decreases from the start.
    EXPECT_LT(result->curves.mean.back(), result->curves.mean.front());
  }
}

TEST(RunProtocolTest, KernelTrainFractionVariantsRun) {
  ProtocolOptions opts = FastOptions();
  for (double fraction : {0.1, 0.5, 1.0}) {
    opts.kernel_train_fraction = fraction;
    auto result = RunProtocol(SmallSyn(), StrategyKind::kEaseMl, opts);
    ASSERT_TRUE(result.ok()) << "fraction=" << fraction;
  }
}

TEST(RunProtocolTest, CostAwareBudgetAndPolicyCombinationsRun) {
  ProtocolOptions opts = FastOptions();
  opts.cost_aware_budget = true;
  opts.cost_aware_policy = false;  // the Figure-13 lesion arm
  auto lesion = RunProtocol(SmallSyn(), StrategyKind::kEaseMl, opts);
  ASSERT_TRUE(lesion.ok());
  opts.cost_aware_policy = true;
  auto full = RunProtocol(SmallSyn(), StrategyKind::kEaseMl, opts);
  ASSERT_TRUE(full.ok());
  // Both are valid campaigns; the cost-aware index changes behaviour.
  EXPECT_NE(full->curves.mean, lesion->curves.mean);
}

TEST(RunStrategiesTest, OneResultPerStrategy) {
  auto results = RunStrategies(
      SmallSyn(),
      {StrategyKind::kEaseMl, StrategyKind::kRoundRobin,
       StrategyKind::kRandom},
      FastOptions());
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 3u);
  EXPECT_EQ((*results)[0].strategy_name, "ease.ml");
  EXPECT_EQ((*results)[1].strategy_name, "round-robin");
  EXPECT_EQ((*results)[2].strategy_name, "random");
}

TEST(RunProtocolTest, TuningPathRunsOnSmallData) {
  ProtocolOptions opts = FastOptions();
  opts.num_reps = 2;
  opts.tune_hyperparameters = true;
  auto result = RunProtocol(SmallSyn(), StrategyKind::kEaseMl, opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
}

}  // namespace
}  // namespace easeml::core
