#include "core/multi_tenant_selector.h"

#include <gtest/gtest.h>

#include <set>

namespace easeml::core {
namespace {

MultiTenantSelector MakeSelector(SchedulerKind kind = SchedulerKind::kHybrid,
                                 bool cost_aware = false) {
  SelectorOptions opts;
  opts.scheduler = kind;
  opts.cost_aware = cost_aware;
  auto s = MultiTenantSelector::Create(opts);
  EXPECT_TRUE(s.ok());
  return std::move(s).value();
}

TEST(SelectorTest, CreateValidatesOptions) {
  SelectorOptions bad;
  bad.delta = 0.0;
  EXPECT_FALSE(MultiTenantSelector::Create(bad).ok());
  bad = SelectorOptions();
  bad.hybrid_patience = 0;
  EXPECT_FALSE(MultiTenantSelector::Create(bad).ok());
  EXPECT_TRUE(MultiTenantSelector::Create(SelectorOptions()).ok());
}

TEST(SelectorTest, SchedulerKindNames) {
  EXPECT_EQ(SchedulerKindName(SchedulerKind::kHybrid), "hybrid");
  EXPECT_EQ(SchedulerKindName(SchedulerKind::kGreedy), "greedy");
  EXPECT_EQ(SchedulerKindName(SchedulerKind::kRoundRobin), "round-robin");
  EXPECT_EQ(SchedulerKindName(SchedulerKind::kRandom), "random");
  EXPECT_EQ(SchedulerKindName(SchedulerKind::kFcfs), "fcfs");
}

TEST(SelectorTest, EmptySelectorIsExhausted) {
  auto s = MakeSelector();
  EXPECT_TRUE(s.Exhausted());
  EXPECT_FALSE(s.Next().ok());
}

TEST(SelectorTest, AddTenantValidation) {
  auto s = MakeSelector();
  EXPECT_FALSE(s.AddTenantWithDefaultPrior(0, {}).ok());
  EXPECT_FALSE(s.AddTenantWithDefaultPrior(2, {1.0}).ok());
  auto id = s.AddTenantWithDefaultPrior(2, {1.0, 1.0});
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 0);
  EXPECT_EQ(s.num_tenants(), 1);
}

TEST(SelectorTest, SharedPriorTenantsRunFullCampaign) {
  auto s = MakeSelector(SchedulerKind::kGreedy, /*cost_aware=*/true);
  auto prior = gp::MakeSharedGpPrior(linalg::Matrix::Identity(3), 1e-2);
  ASSERT_TRUE(prior.ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(s.AddTenant(*prior, {1.0, 2.0, 3.0}).ok());
  }
  // All three tenants reference the same Gram matrix allocation.
  EXPECT_EQ(prior->use_count(), 4);
  int steps = 0;
  while (!s.Exhausted()) {
    auto a = s.Next();
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(s.Report(*a, 0.4 + 0.1 * a->model).ok());
    ASSERT_LT(++steps, 100);
  }
  EXPECT_EQ(steps, 9);
  for (int i = 0; i < 3; ++i) {
    auto best = s.BestModel(i);
    ASSERT_TRUE(best.ok());
    EXPECT_EQ(*best, 2);  // accuracy increases with the model index
  }
}

TEST(SelectorTest, NextReportLoopDrivesAllModels) {
  auto s = MakeSelector();
  ASSERT_TRUE(s.AddTenantWithDefaultPrior(3, {1, 1, 1}).ok());
  ASSERT_TRUE(s.AddTenantWithDefaultPrior(2, {1, 1}).ok());
  std::set<std::pair<int, int>> assignments;
  while (!s.Exhausted()) {
    auto a = s.Next();
    ASSERT_TRUE(a.ok());
    EXPECT_TRUE(assignments.insert({a->tenant, a->model}).second)
        << "duplicate assignment";
    ASSERT_TRUE(s.Report(*a, 0.5 + 0.01 * a->model).ok());
  }
  EXPECT_EQ(assignments.size(), 5u);  // 3 + 2, each exactly once
}

TEST(SelectorTest, OneOutstandingAssignmentAtATime) {
  auto s = MakeSelector();
  ASSERT_TRUE(s.AddTenantWithDefaultPrior(2, {1, 1}).ok());
  auto a = s.Next();
  ASSERT_TRUE(a.ok());
  EXPECT_FALSE(s.Next().ok());  // pending report
  // Reporting a mismatched assignment is rejected.
  MultiTenantSelector::Assignment wrong = *a;
  wrong.model = (wrong.model + 1) % 2;
  EXPECT_FALSE(s.Report(wrong, 0.5).ok());
  EXPECT_TRUE(s.Report(*a, 0.5).ok());
  // Reporting twice is rejected.
  EXPECT_FALSE(s.Report(*a, 0.5).ok());
}

TEST(SelectorTest, InitialSweepServesEveryTenantOnce) {
  auto s = MakeSelector(SchedulerKind::kGreedy);
  for (int t = 0; t < 4; ++t) {
    ASSERT_TRUE(s.AddTenantWithDefaultPrior(3, {1, 1, 1}).ok());
  }
  std::set<int> served;
  for (int step = 0; step < 4; ++step) {
    auto a = s.Next();
    ASSERT_TRUE(a.ok());
    served.insert(a->tenant);
    ASSERT_TRUE(s.Report(*a, 0.5).ok());
  }
  EXPECT_EQ(served.size(), 4u);
}

TEST(SelectorTest, BestModelTracksReports) {
  auto s = MakeSelector();
  ASSERT_TRUE(s.AddTenantWithDefaultPrior(3, {1, 1, 1}).ok());
  EXPECT_FALSE(s.BestModel(0).ok());
  EXPECT_FALSE(s.BestModel(5).ok());  // out of range

  // Report decreasing accuracies: the first model stays the best.
  std::vector<double> accs = {0.9, 0.5, 0.3};
  int first_model = -1;
  for (int i = 0; i < 3; ++i) {
    auto a = s.Next();
    ASSERT_TRUE(a.ok());
    if (i == 0) first_model = a->model;
    ASSERT_TRUE(s.Report(*a, accs[i]).ok());
  }
  auto best = s.BestModel(0);
  ASSERT_TRUE(best.ok());
  EXPECT_EQ(*best, first_model);
  auto best_acc = s.BestAccuracy(0);
  ASSERT_TRUE(best_acc.ok());
  EXPECT_DOUBLE_EQ(*best_acc, 0.9);
  auto rounds = s.RoundsServed(0);
  ASSERT_TRUE(rounds.ok());
  EXPECT_EQ(*rounds, 3);
}

TEST(SelectorTest, TenantAddedMidStreamGetsServed) {
  auto s = MakeSelector(SchedulerKind::kRoundRobin);
  ASSERT_TRUE(s.AddTenantWithDefaultPrior(2, {1, 1}).ok());
  auto a = s.Next();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(s.Report(*a, 0.4).ok());
  // A new tenant arrives; the sweep rule must serve it next.
  ASSERT_TRUE(s.AddTenantWithDefaultPrior(2, {1, 1}).ok());
  auto b = s.Next();
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->tenant, 1);
  ASSERT_TRUE(s.Report(*b, 0.6).ok());
}

class SelectorSchedulerKindTest
    : public ::testing::TestWithParam<SchedulerKind> {};

TEST_P(SelectorSchedulerKindTest, FullCampaignTerminates) {
  auto s = MakeSelector(GetParam(), /*cost_aware=*/true);
  ASSERT_TRUE(s.AddTenant(
                   *gp::DiscreteArmGp::Create(linalg::Matrix::Identity(4),
                                              0.01),
                   {0.5, 1.0, 2.0, 4.0})
                  .ok());
  ASSERT_TRUE(s.AddTenantWithDefaultPrior(3, {1, 1, 1}).ok());
  int steps = 0;
  while (!s.Exhausted()) {
    auto a = s.Next();
    ASSERT_TRUE(a.ok()) << SchedulerKindName(GetParam());
    ASSERT_TRUE(s.Report(*a, 0.3).ok());
    ASSERT_LT(++steps, 100);
  }
  EXPECT_EQ(steps, 7);
}

INSTANTIATE_TEST_SUITE_P(AllSchedulers, SelectorSchedulerKindTest,
                         ::testing::Values(SchedulerKind::kHybrid,
                                           SchedulerKind::kGreedy,
                                           SchedulerKind::kRoundRobin,
                                           SchedulerKind::kRandom,
                                           SchedulerKind::kFcfs));

/// Regression for the default-prior cache's bounded-growth guarantee: a
/// long-lived service whose tenant churn retires (K, noise) shapes must
/// not accumulate dead weak_ptr entries — EVERY lookup (hits included)
/// sweeps expired slots, so the raw map size collapses back to the live
/// shapes on the next AddTenantWithDefaultPrior of any kind.
TEST(SelectorTest, DefaultPriorCachePrunesDeadShapesOnLookup) {
  // A live anchor shape that persists across the churn below.
  auto anchor = MakeSelector();
  ASSERT_TRUE(anchor.AddTenantWithDefaultPrior(3, {1.0, 1.0, 1.0}).ok());
  const int live_floor = DefaultPriorCacheSizeForTesting();

  {
    // Churned shapes: distinct (K, noise) entries that die with this
    // selector (the prior is shared only by its tenants).
    auto churned = MakeSelector();
    for (int k = 4; k < 14; ++k) {
      ASSERT_TRUE(
          churned.AddTenantWithDefaultPrior(k, std::vector<double>(k, 1.0))
              .ok());
    }
    EXPECT_GE(DefaultPriorCacheSizeForTesting(), live_floor + 10);
  }
  // The weak_ptrs are dead but unswept: the raw size still includes them.
  EXPECT_GE(DefaultPriorCacheSizeForTesting(), live_floor + 10);

  // A pure cache HIT (the anchor's live shape) must sweep all ten.
  ASSERT_TRUE(anchor.AddTenantWithDefaultPrior(3, {1.0, 1.0, 1.0}).ok());
  EXPECT_EQ(DefaultPriorCacheSizeForTesting(), live_floor);
}

}  // namespace
}  // namespace easeml::core
