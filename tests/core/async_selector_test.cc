/// Interleaving conformance suite for the async multi-device selector.
///
/// Small (T=2 tenants, K=3 models, D=2 devices) campaigns are driven
/// through EVERY completion ordering: the driver always fills both device
/// slots, then the DFS choice bits decide which outstanding completion is
/// reported next. Every ordering must yield a legal belief state and the
/// same exhaustion point, and the stale/duplicate/unknown/forged report
/// paths must fail with their precise Status codes without corrupting
/// belief state.
#include "core/multi_tenant_selector.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <set>
#include <utility>
#include <vector>

namespace easeml::core {
namespace {

using Assignment = MultiTenantSelector::Assignment;

constexpr int kTenants = 2;
constexpr int kModels = 3;
constexpr int kDevices = 2;
constexpr int kTotalJobs = kTenants * kModels;

/// Deterministic ground-truth accuracy of (tenant, model).
double Accuracy(int tenant, int model) {
  return 0.30 + 0.20 * model + 0.05 * tenant;
}

MultiTenantSelector MakeSelector(SchedulerKind kind, int num_devices,
                                 int tenants = kTenants,
                                 int models = kModels) {
  SelectorOptions opts;
  opts.scheduler = kind;
  opts.cost_aware = false;
  opts.num_devices = num_devices;
  auto s = MultiTenantSelector::Create(opts);
  EXPECT_TRUE(s.ok());
  MultiTenantSelector selector = std::move(s).value();
  for (int t = 0; t < tenants; ++t) {
    EXPECT_TRUE(selector
                    .AddTenantWithDefaultPrior(
                        models, std::vector<double>(models, 1.0))
                    .ok());
  }
  return selector;
}

/// Runs one full campaign where completion i is delivered according to
/// `choice_bits` (bit i picks among the outstanding assignments when there
/// is a choice). Stores the delivery order in `trace` for deduplication.
void RunOrdering(SchedulerKind kind, uint32_t choice_bits,
                 std::vector<int64_t>* trace_out) {
  MultiTenantSelector selector = MakeSelector(kind, kDevices);
  std::vector<Assignment> outstanding;
  std::vector<int64_t> trace;
  std::set<std::pair<int, int>> handed_out;
  int dispatched = 0;
  int completed = 0;
  int bit = 0;

  auto fill = [&]() {
    while (selector.HasDispatchableWork()) {
      auto a = selector.Next();
      ASSERT_TRUE(a.ok()) << a.status().ToString();
      // No (tenant, model) may ever be handed out twice, even while the
      // first copy is still in flight on another device.
      EXPECT_TRUE(handed_out.insert({a->tenant, a->model}).second)
          << "duplicate hand-out: tenant " << a->tenant << " model "
          << a->model;
      EXPECT_LE(selector.num_in_flight(), kDevices);
      outstanding.push_back(*a);
      ++dispatched;
    }
  };

  fill();
  while (!outstanding.empty()) {
    size_t pick = 0;
    if (outstanding.size() > 1) {
      pick = (choice_bits >> bit) & 1u;
      ++bit;
    }
    const Assignment a = outstanding[pick];
    outstanding.erase(outstanding.begin() + static_cast<long>(pick));
    ASSERT_TRUE(selector.Report(a, Accuracy(a.tenant, a.model)).ok());
    trace.push_back(a.id);
    ++completed;
    fill();
    if (::testing::Test::HasFatalFailure()) return;
  }

  // Same exhaustion point for every ordering: all T*K jobs dispatched and
  // completed, selector exhausted, nothing left in flight.
  EXPECT_EQ(dispatched, kTotalJobs);
  EXPECT_EQ(completed, kTotalJobs);
  EXPECT_TRUE(selector.Exhausted());
  EXPECT_EQ(selector.num_in_flight(), 0);
  EXPECT_FALSE(selector.Next().ok());

  // Legal final belief state: every tenant served every model exactly once
  // and converged on the true argmax.
  for (int t = 0; t < kTenants; ++t) {
    auto rounds = selector.RoundsServed(t);
    ASSERT_TRUE(rounds.ok());
    EXPECT_EQ(*rounds, kModels);
    auto best = selector.BestModel(t);
    ASSERT_TRUE(best.ok());
    EXPECT_EQ(*best, kModels - 1);  // Accuracy() increases with model index
    auto best_acc = selector.BestAccuracy(t);
    ASSERT_TRUE(best_acc.ok());
    EXPECT_DOUBLE_EQ(*best_acc, Accuracy(t, kModels - 1));
  }
  *trace_out = std::move(trace);
}

class AsyncOrderingTest : public ::testing::TestWithParam<SchedulerKind> {};

TEST_P(AsyncOrderingTest, EveryReportOrderingIsLegal) {
  // 6 completions with at most a binary choice each: 2^6 choice vectors
  // cover every reachable ordering (duplicates collapse in the trace set).
  std::set<std::vector<int64_t>> distinct_orderings;
  for (uint32_t bits = 0; bits < (1u << kTotalJobs); ++bits) {
    std::vector<int64_t> trace;
    RunOrdering(GetParam(), bits, &trace);
    if (HasFatalFailure()) return;
    distinct_orderings.insert(trace);
  }
  // With two device slots there is a genuine choice at most steps: the
  // enumeration must exercise strictly more than the sequential ordering.
  EXPECT_GT(distinct_orderings.size(), 8u);
}

INSTANTIATE_TEST_SUITE_P(AllSchedulers, AsyncOrderingTest,
                         ::testing::Values(SchedulerKind::kHybrid,
                                           SchedulerKind::kGreedy,
                                           SchedulerKind::kRoundRobin,
                                           SchedulerKind::kRandom,
                                           SchedulerKind::kFcfs),
                         [](const auto& info) {
                           return SchedulerKindName(info.param) == "round-robin"
                                      ? std::string("round_robin")
                                      : SchedulerKindName(info.param);
                         });

TEST(AsyncSelectorTest, NextFailsWhileAllDevicesBusy) {
  MultiTenantSelector s = MakeSelector(SchedulerKind::kRoundRobin, kDevices);
  ASSERT_TRUE(s.Next().ok());
  ASSERT_TRUE(s.Next().ok());
  auto third = s.Next();
  EXPECT_FALSE(third.ok());
  EXPECT_EQ(third.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(s.HasDispatchableWork());
}

TEST(AsyncSelectorTest, NextFailsWhenEveryRemainingModelIsInFlight) {
  // One tenant, two models, four devices: after two hand-outs nothing is
  // dispatchable although device slots remain free.
  MultiTenantSelector s = MakeSelector(SchedulerKind::kRoundRobin,
                                       /*num_devices=*/4, /*tenants=*/1,
                                       /*models=*/2);
  ASSERT_TRUE(s.Next().ok());
  ASSERT_TRUE(s.Next().ok());
  EXPECT_FALSE(s.HasDispatchableWork());
  auto next = s.Next();
  EXPECT_FALSE(next.ok());
  EXPECT_EQ(next.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(s.Exhausted());  // in-flight work keeps the campaign alive
}

TEST(AsyncSelectorTest, UnknownAssignmentIdIsNotFound) {
  MultiTenantSelector s = MakeSelector(SchedulerKind::kRoundRobin, kDevices);
  auto a = s.Next();
  ASSERT_TRUE(a.ok());
  Assignment unknown = *a;
  unknown.id = 9999;  // never issued
  EXPECT_EQ(s.Report(unknown, 0.5).code(), StatusCode::kNotFound);
  Assignment defaulted;  // id -1: never issued either
  EXPECT_EQ(s.Report(defaulted, 0.5).code(), StatusCode::kNotFound);
  // The real assignment is still reportable: belief state was not touched.
  EXPECT_TRUE(s.Report(*a, 0.5).ok());
  // A never-issued id stays NotFound even with an EMPTY in-flight table
  // (the taxonomy distinguishes it from a stale ticket regardless).
  EXPECT_EQ(s.num_in_flight(), 0);
  EXPECT_EQ(s.Report(unknown, 0.5).code(), StatusCode::kNotFound);
}

TEST(AsyncSelectorTest, DuplicateReportIsFailedPrecondition) {
  MultiTenantSelector s = MakeSelector(SchedulerKind::kRoundRobin, kDevices);
  auto a = s.Next();
  auto b = s.Next();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(s.Report(*a, 0.5).ok());
  // Same ticket again while another assignment is still live: stale.
  EXPECT_EQ(s.Report(*a, 0.5).code(), StatusCode::kFailedPrecondition);
  auto rounds = s.RoundsServed(a->tenant);
  ASSERT_TRUE(rounds.ok());
  EXPECT_EQ(*rounds, 1);  // the duplicate did not touch belief state
  ASSERT_TRUE(s.Report(*b, 0.5).ok());
}

TEST(AsyncSelectorTest, ForgedAssignmentIsInvalidArgument) {
  MultiTenantSelector s = MakeSelector(SchedulerKind::kRoundRobin, kDevices);
  auto a = s.Next();
  ASSERT_TRUE(a.ok());
  Assignment forged_model = *a;
  forged_model.model = (forged_model.model + 1) % kModels;
  EXPECT_EQ(s.Report(forged_model, 0.9).code(),
            StatusCode::kInvalidArgument);
  Assignment forged_tenant = *a;
  forged_tenant.tenant = (forged_tenant.tenant + 1) % kTenants;
  EXPECT_EQ(s.Report(forged_tenant, 0.9).code(),
            StatusCode::kInvalidArgument);
  // The forged reports left the issued entry live and beliefs untouched.
  EXPECT_EQ(s.num_in_flight(), 1);
  EXPECT_FALSE(s.BestModel(a->tenant).ok());
  EXPECT_TRUE(s.Report(*a, 0.9).ok());
}

TEST(AsyncSelectorTest, NonFiniteAccuracyIsRejected) {
  MultiTenantSelector s = MakeSelector(SchedulerKind::kRoundRobin, kDevices);
  auto a = s.Next();
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(s.Report(*a, std::numeric_limits<double>::quiet_NaN()).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(s.Report(*a, std::numeric_limits<double>::infinity()).code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(s.Report(*a, 0.5).ok());
}

TEST(AsyncSelectorTest, ReportAfterExhaustionIsFailedPrecondition) {
  MultiTenantSelector s = MakeSelector(SchedulerKind::kRoundRobin, kDevices);
  Assignment last;
  while (!s.Exhausted()) {
    auto a = s.Next();
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(s.Report(*a, Accuracy(a->tenant, a->model)).ok());
    last = *a;
  }
  EXPECT_EQ(s.Report(last, 0.5).code(), StatusCode::kFailedPrecondition);
}

TEST(AsyncSelectorTest, CancelReturnsTheTicketWithoutAnObservation) {
  MultiTenantSelector s = MakeSelector(SchedulerKind::kRoundRobin,
                                       /*num_devices=*/4, /*tenants=*/1,
                                       /*models=*/2);
  auto a = s.Next();
  auto b = s.Next();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(s.HasDispatchableWork());  // both models charged
  ASSERT_TRUE(s.Cancel(*a).ok());
  // The arm is dispatchable again and no observation was recorded.
  EXPECT_TRUE(s.HasDispatchableWork());
  EXPECT_EQ(s.num_in_flight(), 1);
  auto rounds = s.RoundsServed(0);
  ASSERT_TRUE(rounds.ok());
  EXPECT_EQ(*rounds, 0);
  // The cancelled ticket is dead: reporting it is stale, and the model
  // comes back under a fresh ticket.
  EXPECT_EQ(s.Report(*a, 0.5).code(), StatusCode::kFailedPrecondition);
  auto c = s.Next();
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->model, a->model);
  EXPECT_GT(c->id, b->id);
  ASSERT_TRUE(s.Report(*b, 0.4).ok());
  ASSERT_TRUE(s.Report(*c, 0.6).ok());
  EXPECT_TRUE(s.Exhausted());
}

TEST(AsyncSelectorTest, CancelValidatesLikeReport) {
  MultiTenantSelector s = MakeSelector(SchedulerKind::kRoundRobin, kDevices);
  auto a = s.Next();
  ASSERT_TRUE(a.ok());
  Assignment unknown = *a;
  unknown.id = 777;
  EXPECT_EQ(s.Cancel(unknown).code(), StatusCode::kNotFound);
  Assignment forged = *a;
  forged.model = (forged.model + 1) % kModels;
  EXPECT_EQ(s.Cancel(forged).code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE(s.Cancel(*a).ok());
  EXPECT_EQ(s.Cancel(*a).code(), StatusCode::kFailedPrecondition);  // stale
}

TEST(AsyncSelectorTest, InFlightAssignmentExposesTheIssuedEntry) {
  MultiTenantSelector s = MakeSelector(SchedulerKind::kRoundRobin, kDevices);
  EXPECT_FALSE(s.InFlightAssignment(0).ok());
  auto a = s.Next();
  ASSERT_TRUE(a.ok());
  auto issued = s.InFlightAssignment(a->id);
  ASSERT_TRUE(issued.ok());
  EXPECT_EQ(issued->tenant, a->tenant);
  EXPECT_EQ(issued->model, a->model);
  ASSERT_TRUE(s.Report(*a, 0.5).ok());
  EXPECT_EQ(s.InFlightAssignment(a->id).status().code(),
            StatusCode::kNotFound);
}

TEST(AsyncSelectorTest, CreateRejectsNonPositiveDeviceCount) {
  SelectorOptions opts;
  opts.num_devices = 0;
  EXPECT_FALSE(MultiTenantSelector::Create(opts).ok());
  opts.num_devices = -3;
  EXPECT_FALSE(MultiTenantSelector::Create(opts).ok());
}

TEST(AsyncSelectorTest, SingleDeviceMatchesSequentialProtocol) {
  // D=1 must behave exactly like the seed selector: one outstanding
  // assignment, and the same assignment sequence as a reference run.
  MultiTenantSelector seq = MakeSelector(SchedulerKind::kHybrid, 1);
  MultiTenantSelector async_one = MakeSelector(SchedulerKind::kHybrid, 1);
  while (!seq.Exhausted()) {
    auto a = seq.Next();
    ASSERT_TRUE(a.ok());
    EXPECT_FALSE(seq.Next().ok());  // single slot, like the seed protocol
    auto b = async_one.Next();
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->tenant, b->tenant);
    EXPECT_EQ(a->model, b->model);
    EXPECT_EQ(a->id, b->id);
    ASSERT_TRUE(seq.Report(*a, Accuracy(a->tenant, a->model)).ok());
    ASSERT_TRUE(async_one.Report(*b, Accuracy(b->tenant, b->model)).ok());
  }
  EXPECT_TRUE(async_one.Exhausted());
}

TEST(AsyncSelectorTest, InitializationSweepSkipsChargedTenants) {
  // With two devices and three tenants, the sweep must charge tenants 0
  // and 1 first and NOT hand tenant 0 a second model before its first
  // observation.
  MultiTenantSelector s = MakeSelector(SchedulerKind::kGreedy, kDevices,
                                       /*tenants=*/3);
  auto a = s.Next();
  auto b = s.Next();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->tenant, 0);
  EXPECT_EQ(b->tenant, 1);
  ASSERT_TRUE(s.Report(*a, 0.5).ok());
  // Tenant 2 is still unobserved and uncharged: the sweep serves it before
  // any scheduler decision.
  auto c = s.Next();
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->tenant, 2);
}

}  // namespace
}  // namespace easeml::core
