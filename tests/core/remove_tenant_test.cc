/// MultiTenantSelector::RemoveTenant — the tenant-churn primitive shard
/// rebalancing builds on: refusal taxonomy (in-flight tickets, double
/// removal, unknown ids), exclusion from every scheduling path, retained
/// read-side history, and continued campaign progress for the survivors.
#include "core/multi_tenant_selector.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace easeml::core {
namespace {

using Assignment = MultiTenantSelector::Assignment;

MultiTenantSelector MakeSelector(SchedulerKind kind, int tenants, int models,
                                 int devices = 1) {
  SelectorOptions options;
  options.scheduler = kind;
  options.num_devices = devices;
  auto created = MultiTenantSelector::Create(options);
  EXPECT_TRUE(created.ok());
  MultiTenantSelector selector = std::move(created).value();
  for (int t = 0; t < tenants; ++t) {
    EXPECT_TRUE(selector
                    .AddTenantWithDefaultPrior(
                        models, std::vector<double>(models, 1.0))
                    .ok());
  }
  return selector;
}

TEST(RemoveTenantTest, RefusedWhileTicketsInFlight) {
  MultiTenantSelector selector =
      MakeSelector(SchedulerKind::kFcfs, /*tenants=*/2, /*models=*/2);
  auto a = selector.Next();
  ASSERT_TRUE(a.ok());
  ASSERT_EQ(a->tenant, 0);

  const Status refused = selector.RemoveTenant(0);
  EXPECT_EQ(refused.code(), StatusCode::kFailedPrecondition);
  // The other tenant has nothing outstanding and may leave immediately.
  EXPECT_TRUE(selector.RemoveTenant(1).ok());

  // After the completion lands, removal succeeds.
  ASSERT_TRUE(selector.Report(*a, 0.5).ok());
  EXPECT_TRUE(selector.RemoveTenant(0).ok());
}

TEST(RemoveTenantTest, RefusalTaxonomy) {
  MultiTenantSelector selector =
      MakeSelector(SchedulerKind::kFcfs, /*tenants=*/1, /*models=*/2);
  EXPECT_EQ(selector.RemoveTenant(-1).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(selector.RemoveTenant(1).code(), StatusCode::kOutOfRange);
  ASSERT_TRUE(selector.RemoveTenant(0).ok());
  EXPECT_EQ(selector.RemoveTenant(0).code(),
            StatusCode::kFailedPrecondition);  // already removed
}

TEST(RemoveTenantTest, CancelReturnsTicketAndUnblocksRemoval) {
  MultiTenantSelector selector =
      MakeSelector(SchedulerKind::kFcfs, /*tenants=*/1, /*models=*/3);
  auto a = selector.Next();
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(selector.RemoveTenant(0).code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(selector.Cancel(*a).ok());
  EXPECT_TRUE(selector.RemoveTenant(0).ok());
  EXPECT_TRUE(selector.Exhausted());
}

TEST(RemoveTenantTest, RemovedTenantIsNeverScheduledAgain) {
  MultiTenantSelector selector =
      MakeSelector(SchedulerKind::kHybrid, /*tenants=*/3, /*models=*/3);
  // Give every tenant one observation so the init sweep is done.
  for (int i = 0; i < 3; ++i) {
    auto a = selector.Next();
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(selector.Report(*a, 0.4 + 0.1 * a->tenant).ok());
  }
  ASSERT_TRUE(selector.RemoveTenant(1).ok());
  while (!selector.Exhausted()) {
    auto a = selector.Next();
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    EXPECT_NE(a->tenant, 1) << "removed tenant was scheduled";
    ASSERT_TRUE(selector.Report(*a, 0.5).ok());
  }
  // Survivors finished their campaigns in full.
  EXPECT_EQ(selector.RoundsServed(0).value(), 3);
  EXPECT_EQ(selector.RoundsServed(2).value(), 3);
}

TEST(RemoveTenantTest, HistoryStaysReadableAfterRemoval) {
  MultiTenantSelector selector =
      MakeSelector(SchedulerKind::kFcfs, /*tenants=*/2, /*models=*/2);
  auto a = selector.Next();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(selector.Report(*a, 0.71).ok());
  ASSERT_TRUE(selector.RemoveTenant(0).ok());

  EXPECT_EQ(selector.BestModel(0).value(), a->model);
  EXPECT_DOUBLE_EQ(selector.BestAccuracy(0).value(), 0.71);
  EXPECT_EQ(selector.RoundsServed(0).value(), 1);
  EXPECT_EQ(selector.num_tenants(), 2);  // ids stay stable
}

TEST(RemoveTenantTest, RemovingEveryTenantExhaustsTheSelector) {
  MultiTenantSelector selector =
      MakeSelector(SchedulerKind::kRoundRobin, /*tenants=*/2, /*models=*/2);
  ASSERT_TRUE(selector.RemoveTenant(0).ok());
  ASSERT_TRUE(selector.RemoveTenant(1).ok());
  EXPECT_TRUE(selector.Exhausted());
  EXPECT_FALSE(selector.HasDispatchableWork());
  auto next = selector.Next();
  EXPECT_EQ(next.status().code(), StatusCode::kFailedPrecondition);
}

TEST(RemoveTenantTest, NewTenantsGetFreshIdsAfterRemoval) {
  MultiTenantSelector selector =
      MakeSelector(SchedulerKind::kFcfs, /*tenants=*/2, /*models=*/2);
  ASSERT_TRUE(selector.RemoveTenant(0).ok());
  auto id = selector.AddTenantWithDefaultPrior(2, {1.0, 1.0});
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 2);  // ids are never reused
  EXPECT_EQ(selector.num_tenants(), 3);
}

TEST(RemoveTenantTest, GreedySchedulesAroundReleasedBeliefs) {
  // Retiring releases the tenant's policy belief; the GREEDY scan (which
  // inspects every user's policy capabilities) must skip it cleanly.
  MultiTenantSelector selector =
      MakeSelector(SchedulerKind::kGreedy, /*tenants=*/3, /*models=*/2,
                   /*devices=*/2);
  for (int i = 0; i < 3; ++i) {
    auto a = selector.Next();
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(selector.Report(*a, 0.3 + 0.2 * a->tenant).ok());
  }
  ASSERT_TRUE(selector.RemoveTenant(2).ok());
  std::set<int> served;
  while (selector.HasDispatchableWork()) {
    auto a = selector.Next();
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    served.insert(a->tenant);
    ASSERT_TRUE(selector.Report(*a, 0.6).ok());
  }
  EXPECT_EQ(served.count(2), 0u);
  EXPECT_TRUE(selector.Exhausted());
}

}  // namespace
}  // namespace easeml::core
