#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "bandit/gp_ucb.h"
#include "linalg/matrix.h"
#include "scheduler/fcfs.h"
#include "scheduler/random_scheduler.h"
#include "scheduler/round_robin.h"
#include "scheduler/user_state.h"

namespace easeml::scheduler {
namespace {

std::vector<UserState> MakeUsers(int n, int k) {
  std::vector<UserState> users;
  for (int i = 0; i < n; ++i) {
    auto belief =
        gp::DiscreteArmGp::Create(linalg::Matrix::Identity(k), 0.01);
    EXPECT_TRUE(belief.ok());
    auto policy = bandit::GpUcbPolicy::CreateUnique(
        std::move(belief).value(), bandit::GpUcbOptions());
    EXPECT_TRUE(policy.ok());
    auto state = UserState::Create(i, std::move(policy).value(),
                                   std::vector<double>(k, 1.0));
    EXPECT_TRUE(state.ok());
    users.push_back(std::move(state).value());
  }
  return users;
}

void Exhaust(UserState& u) {
  while (!u.Exhausted()) {
    auto arm = u.SelectArm();
    ASSERT_TRUE(arm.ok());
    ASSERT_TRUE(u.RecordOutcome(*arm, 0.5).ok());
  }
}

TEST(RoundRobinTest, CyclesThroughUsers) {
  auto users = MakeUsers(3, 4);
  RoundRobinScheduler rr;
  std::vector<int> picks;
  for (int t = 1; t <= 6; ++t) {
    auto u = rr.PickUser(users, t);
    ASSERT_TRUE(u.ok());
    picks.push_back(*u);
  }
  EXPECT_EQ(picks, (std::vector<int>{0, 1, 2, 0, 1, 2}));
  EXPECT_EQ(rr.name(), "round-robin");
}

TEST(RoundRobinTest, SkipsExhaustedUsers) {
  auto users = MakeUsers(3, 2);
  Exhaust(users[1]);
  RoundRobinScheduler rr;
  std::vector<int> picks;
  for (int t = 1; t <= 4; ++t) {
    auto u = rr.PickUser(users, t);
    ASSERT_TRUE(u.ok());
    picks.push_back(*u);
  }
  EXPECT_EQ(picks, (std::vector<int>{0, 2, 0, 2}));
}

TEST(RoundRobinTest, FailsWhenAllExhausted) {
  auto users = MakeUsers(2, 1);
  Exhaust(users[0]);
  Exhaust(users[1]);
  RoundRobinScheduler rr;
  EXPECT_FALSE(rr.PickUser(users, 1).ok());
}

TEST(RandomSchedulerTest, PicksOnlyActiveUsers) {
  auto users = MakeUsers(4, 2);
  Exhaust(users[0]);
  Exhaust(users[2]);
  RandomScheduler rs(7);
  for (int t = 1; t <= 40; ++t) {
    auto u = rs.PickUser(users, t);
    ASSERT_TRUE(u.ok());
    EXPECT_TRUE(*u == 1 || *u == 3);
  }
}

TEST(RandomSchedulerTest, EventuallyPicksEveryActiveUser) {
  auto users = MakeUsers(5, 3);
  RandomScheduler rs(11);
  std::set<int> seen;
  for (int t = 1; t <= 200; ++t) {
    auto u = rs.PickUser(users, t);
    ASSERT_TRUE(u.ok());
    seen.insert(*u);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RandomSchedulerTest, DeterministicUnderSeed) {
  auto users = MakeUsers(5, 3);
  RandomScheduler a(3), b(3);
  for (int t = 1; t <= 20; ++t) {
    auto ua = a.PickUser(users, t);
    auto ub = b.PickUser(users, t);
    ASSERT_TRUE(ua.ok());
    ASSERT_TRUE(ub.ok());
    EXPECT_EQ(*ua, *ub);
  }
}

TEST(FcfsTest, ServesFirstUserUntilExhausted) {
  auto users = MakeUsers(3, 2);
  FcfsScheduler fcfs;
  // Serve according to FCFS, executing the picks.
  std::vector<int> picks;
  for (int t = 1; t <= 6; ++t) {
    auto u = fcfs.PickUser(users, t);
    ASSERT_TRUE(u.ok());
    picks.push_back(*u);
    auto arm = users[*u].SelectArm();
    ASSERT_TRUE(arm.ok());
    ASSERT_TRUE(users[*u].RecordOutcome(*arm, 0.5).ok());
  }
  EXPECT_EQ(picks, (std::vector<int>{0, 0, 1, 1, 2, 2}));
}

TEST(FcfsTest, FailsWhenAllExhausted) {
  auto users = MakeUsers(1, 1);
  Exhaust(users[0]);
  FcfsScheduler fcfs;
  EXPECT_FALSE(fcfs.PickUser(users, 1).ok());
}

}  // namespace
}  // namespace easeml::scheduler
