#include "scheduler/user_state.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "bandit/gp_ucb.h"
#include "bandit/ucb1.h"
#include "linalg/matrix.h"

namespace easeml::scheduler {
namespace {

std::unique_ptr<bandit::GpUcbPolicy> MakeGpPolicy(
    int k, std::vector<double> prior_mean = {}) {
  auto belief = gp::DiscreteArmGp::Create(linalg::Matrix::Identity(k), 0.01,
                                          std::move(prior_mean));
  EXPECT_TRUE(belief.ok());
  auto policy = bandit::GpUcbPolicy::CreateUnique(std::move(belief).value(),
                                                  bandit::GpUcbOptions());
  EXPECT_TRUE(policy.ok());
  return std::move(policy).value();
}

UserState MakeUser(int id, int k) {
  auto state =
      UserState::Create(id, MakeGpPolicy(k), std::vector<double>(k, 1.0));
  EXPECT_TRUE(state.ok());
  return std::move(state).value();
}

TEST(UserStateTest, CreateValidation) {
  EXPECT_FALSE(UserState::Create(0, nullptr, {1.0}).ok());
  EXPECT_FALSE(UserState::Create(0, MakeGpPolicy(3), {1.0}).ok());
  EXPECT_FALSE(UserState::Create(0, MakeGpPolicy(2), {1.0, -1.0}).ok());
  EXPECT_TRUE(UserState::Create(0, MakeGpPolicy(2), {1.0, 2.0}).ok());
}

TEST(UserStateTest, InitialState) {
  UserState u = MakeUser(3, 4);
  EXPECT_EQ(u.user_id(), 3);
  EXPECT_EQ(u.num_models(), 4);
  EXPECT_EQ(u.rounds_served(), 0);
  EXPECT_FALSE(u.Exhausted());
  EXPECT_FALSE(u.has_observations());
  EXPECT_DOUBLE_EQ(u.best_reward(), 0.0);
  EXPECT_TRUE(std::isinf(u.empirical_bound()));
  EXPECT_EQ(u.AvailableArms(), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_TRUE(u.policy().HasConfidenceBounds());
}

TEST(UserStateTest, SelectRecordProtocol) {
  UserState u = MakeUser(0, 3);
  auto arm = u.SelectArm();
  ASSERT_TRUE(arm.ok());
  // Double selection without recording is a protocol violation.
  EXPECT_FALSE(u.SelectArm().ok());
  // Recording a different arm is rejected.
  EXPECT_FALSE(u.RecordOutcome((*arm + 1) % 3, 0.5).ok());
  EXPECT_TRUE(u.RecordOutcome(*arm, 0.7).ok());
  EXPECT_EQ(u.rounds_served(), 1);
  EXPECT_DOUBLE_EQ(u.best_reward(), 0.7);
  EXPECT_DOUBLE_EQ(u.last_reward(), 0.7);
  // Recording twice is rejected.
  EXPECT_FALSE(u.RecordOutcome(*arm, 0.7).ok());
}

TEST(UserStateTest, ArmsAreNeverReplayed) {
  UserState u = MakeUser(0, 3);
  std::set<int> played;
  for (int t = 0; t < 3; ++t) {
    auto arm = u.SelectArm();
    ASSERT_TRUE(arm.ok());
    EXPECT_TRUE(played.insert(*arm).second) << "arm replayed: " << *arm;
    ASSERT_TRUE(u.RecordOutcome(*arm, 0.5).ok());
  }
  EXPECT_TRUE(u.Exhausted());
  EXPECT_FALSE(u.SelectArm().ok());
  EXPECT_TRUE(u.AvailableArms().empty());
}

TEST(UserStateTest, ConsumedCostAccumulates) {
  auto state = UserState::Create(0, MakeGpPolicy(2), {0.5, 2.0});
  ASSERT_TRUE(state.ok());
  UserState u = std::move(state).value();
  double expected = 0.0;
  for (int t = 0; t < 2; ++t) {
    auto arm = u.SelectArm();
    ASSERT_TRUE(arm.ok());
    expected += u.ArmCost(*arm);
    ASSERT_TRUE(u.RecordOutcome(*arm, 0.5).ok());
  }
  EXPECT_DOUBLE_EQ(u.consumed_cost(), expected);
  EXPECT_DOUBLE_EQ(u.consumed_cost(), 2.5);
}

TEST(UserStateTest, EmpiricalBoundRecurrence) {
  // Single arm, prior mean 0.6: B_1(0) = 0.6 + sqrt(beta_1) * 1.
  auto state = UserState::Create(0, MakeGpPolicy(1, {0.6}), {1.0});
  ASSERT_TRUE(state.ok());
  UserState u = std::move(state).value();
  auto arm = u.SelectArm();
  ASSERT_TRUE(arm.ok());
  const double pending_ucb = u.policy().Ucb(0, 1);
  ASSERT_TRUE(u.RecordOutcome(0, 0.55).ok());
  // sigma~ = min(B_1(a_1), +inf) - y_1.
  EXPECT_NEAR(u.empirical_bound(), pending_ucb - 0.55, 1e-12);
}

TEST(UserStateTest, EmpiricalBoundTightensOverRounds) {
  UserState u = MakeUser(0, 5);
  double prev_min_ucb = std::numeric_limits<double>::infinity();
  for (int t = 0; t < 5; ++t) {
    auto arm = u.SelectArm();
    ASSERT_TRUE(arm.ok());
    ASSERT_TRUE(u.RecordOutcome(*arm, 0.5).ok());
    // The recurrence keeps y + sigma~ non-increasing over rounds.
    const double ucb_proxy = u.last_reward() + u.empirical_bound();
    EXPECT_LE(ucb_proxy, prev_min_ucb + 1e-9);
    prev_min_ucb = std::min(prev_min_ucb, ucb_proxy);
  }
}

TEST(UserStateTest, CancelSelectionUnchargesTheArm) {
  UserState u = MakeUser(0, 3);
  EXPECT_FALSE(u.CancelSelection(0).ok());  // nothing pending
  auto arm = u.SelectArm();
  ASSERT_TRUE(arm.ok());
  EXPECT_FALSE(u.CancelSelection((*arm + 1) % 3).ok());  // not that arm
  ASSERT_TRUE(u.CancelSelection(*arm).ok());
  // No observation happened; the arm is selectable again.
  EXPECT_FALSE(u.has_pending());
  EXPECT_EQ(u.rounds_served(), 0);
  EXPECT_DOUBLE_EQ(u.consumed_cost(), 0.0);
  EXPECT_EQ(u.AvailableArms().size(), 3u);
  auto again = u.SelectArm();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, *arm);  // same belief state, same choice
  ASSERT_TRUE(u.RecordOutcome(*again, 0.5).ok());
}

TEST(UserStateTest, InFlightMaskAllowsConcurrentArms) {
  UserState u = MakeUser(0, 4);
  ASSERT_TRUE(u.set_max_in_flight(3).ok());
  EXPECT_FALSE(u.set_max_in_flight(0).ok());
  auto a = u.SelectArm();
  auto b = u.SelectArm();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(*a, *b);  // charged arms are excluded from reselection
  EXPECT_EQ(u.in_flight_count(), 2);
  EXPECT_TRUE(u.InFlight(*a));
  EXPECT_TRUE(u.Schedulable());  // a third slot and a third arm remain
  // Out-of-order completion: report b before a.
  ASSERT_TRUE(u.RecordOutcome(*b, 0.6).ok());
  ASSERT_TRUE(u.RecordOutcome(*a, 0.4).ok());
  EXPECT_EQ(u.rounds_served(), 2);
  EXPECT_DOUBLE_EQ(u.best_reward(), 0.6);
}

TEST(UserStateTest, MaxUcbOverAvailableArms) {
  UserState u = MakeUser(0, 2);
  const double max_ucb = u.MaxUcb();
  EXPECT_TRUE(std::isfinite(max_ucb));
  // UcbGap = MaxUcb - best_reward, best_reward = 0 initially.
  EXPECT_DOUBLE_EQ(u.UcbGap(), max_ucb);
  // Exhaust the user: MaxUcb becomes -inf.
  for (int t = 0; t < 2; ++t) {
    auto arm = u.SelectArm();
    ASSERT_TRUE(arm.ok());
    ASSERT_TRUE(u.RecordOutcome(*arm, 0.9).ok());
  }
  EXPECT_TRUE(std::isinf(u.MaxUcb()));
  EXPECT_LT(u.MaxUcb(), 0);
}

TEST(UserStateTest, NonGpPolicyHasNoConfidenceBounds) {
  auto state = UserState::Create(
      0, std::make_unique<bandit::Ucb1Policy>(3), {1.0, 1.0, 1.0});
  ASSERT_TRUE(state.ok());
  UserState u = std::move(state).value();
  EXPECT_FALSE(u.policy().HasConfidenceBounds());
  // The protocol still works; the pending UCB falls back to 1.
  auto arm = u.SelectArm();
  ASSERT_TRUE(arm.ok());
  ASSERT_TRUE(u.RecordOutcome(*arm, 0.4).ok());
  EXPECT_NEAR(u.empirical_bound(), 1.0 - 0.4, 1e-12);
}

}  // namespace
}  // namespace easeml::scheduler
