#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "bandit/gp_ucb.h"
#include "bandit/ucb1.h"
#include "linalg/matrix.h"
#include "scheduler/greedy.h"
#include "scheduler/hybrid.h"

namespace easeml::scheduler {
namespace {

UserState MakeGpUser(int id, int k, std::vector<double> prior_mean = {}) {
  auto belief = gp::DiscreteArmGp::Create(linalg::Matrix::Identity(k), 0.01,
                                          std::move(prior_mean));
  EXPECT_TRUE(belief.ok());
  auto policy = bandit::GpUcbPolicy::CreateUnique(std::move(belief).value(),
                                                  bandit::GpUcbOptions());
  EXPECT_TRUE(policy.ok());
  auto state = UserState::Create(id, std::move(policy).value(),
                                 std::vector<double>(k, 1.0));
  EXPECT_TRUE(state.ok());
  return std::move(state).value();
}

void ServeOnce(UserState& u, double reward) {
  auto arm = u.SelectArm();
  ASSERT_TRUE(arm.ok());
  ASSERT_TRUE(u.RecordOutcome(*arm, reward).ok());
}

TEST(CandidateSetTest, EmptyForNoActiveUsers) {
  std::vector<UserState> users;
  EXPECT_TRUE(ComputeCandidateSet(users).empty());
}

TEST(CandidateSetTest, UnobservedUsersAlwaysCandidates) {
  std::vector<UserState> users;
  users.push_back(MakeGpUser(0, 3));
  users.push_back(MakeGpUser(1, 3));
  ServeOnce(users[0], 0.9);
  // User 1 has no observations (sigma~ = inf): always a candidate.
  const auto candidates = ComputeCandidateSet(users);
  EXPECT_NE(std::find(candidates.begin(), candidates.end(), 1),
            candidates.end());
}

TEST(CandidateSetTest, AboveAverageRuleSelectsHighBoundUsers) {
  std::vector<UserState> users;
  for (int i = 0; i < 3; ++i) users.push_back(MakeGpUser(i, 4));
  // User 0 observes a reward close to its UCB (small sigma~); users 1 and 2
  // observe rewards far below (large sigma~, much left to gain).
  ServeOnce(users[0], users[0].MaxUcb() - 0.01);
  ServeOnce(users[1], 0.05);
  ServeOnce(users[2], 0.05);
  const auto candidates = ComputeCandidateSet(users);
  EXPECT_EQ(candidates, (std::vector<int>{1, 2}));
}

TEST(GreedyTest, RequiresGpPolicies) {
  std::vector<UserState> users;
  auto state = UserState::Create(
      0, std::make_unique<bandit::Ucb1Policy>(2), {1.0, 1.0});
  ASSERT_TRUE(state.ok());
  users.push_back(std::move(state).value());
  GreedyScheduler greedy;
  EXPECT_FALSE(greedy.PickUser(users, 1).ok());
}

TEST(GreedyTest, PicksUserWithLargestUcbGap) {
  std::vector<UserState> users;
  // User 0 already found an excellent model; user 1 is far from its bound.
  users.push_back(MakeGpUser(0, 3, {0.9, 0.1, 0.1}));
  users.push_back(MakeGpUser(1, 3, {0.9, 0.1, 0.1}));
  ServeOnce(users[0], 0.95);  // nearly optimal already
  ServeOnce(users[1], 0.30);  // large remaining gap
  GreedyScheduler greedy;
  auto pick = greedy.PickUser(users, 3);
  ASSERT_TRUE(pick.ok());
  EXPECT_EQ(*pick, 1);
  EXPECT_TRUE(greedy.RequiresInitialSweep());
}

TEST(GreedyTest, FailsWhenAllExhausted) {
  std::vector<UserState> users;
  users.push_back(MakeGpUser(0, 1));
  ServeOnce(users[0], 0.5);
  GreedyScheduler greedy;
  EXPECT_FALSE(greedy.PickUser(users, 2).ok());
}

TEST(GreedyTest, SkipsExhaustedUsers) {
  std::vector<UserState> users;
  users.push_back(MakeGpUser(0, 1));  // will be exhausted
  users.push_back(MakeGpUser(1, 3));
  ServeOnce(users[0], 0.2);
  ServeOnce(users[1], 0.2);
  GreedyScheduler greedy;
  auto pick = greedy.PickUser(users, 3);
  ASSERT_TRUE(pick.ok());
  EXPECT_EQ(*pick, 1);
}

TEST(HybridTest, StartsInGreedyMode) {
  HybridScheduler hybrid(10);
  EXPECT_FALSE(hybrid.switched());
  EXPECT_TRUE(hybrid.RequiresInitialSweep());
  EXPECT_EQ(hybrid.name(), "hybrid");
}

TEST(HybridTest, SwitchesAfterFrozenSteps) {
  std::vector<UserState> users;
  users.push_back(MakeGpUser(0, 20));
  users.push_back(MakeGpUser(1, 20));
  ServeOnce(users[0], 0.9);
  ServeOnce(users[1], 0.1);
  HybridScheduler hybrid(/*patience=*/3);
  // Feed identical "no progress" outcomes: best rewards never improve and
  // the candidate set stays stable.
  for (int step = 0; step < 2; ++step) {
    auto pick = hybrid.PickUser(users, step + 3);
    ASSERT_TRUE(pick.ok());
    ServeOnce(users[*pick], 0.05);  // below both bests; no improvement
    hybrid.OnOutcome(users, *pick);
  }
  EXPECT_FALSE(hybrid.switched());
  for (int step = 0; step < 3; ++step) {
    auto pick = hybrid.PickUser(users, step + 5);
    ASSERT_TRUE(pick.ok());
    ServeOnce(users[*pick], 0.05);
    hybrid.OnOutcome(users, *pick);
  }
  EXPECT_TRUE(hybrid.switched());
}

TEST(HybridTest, ProgressResetsFreezeCounter) {
  std::vector<UserState> users;
  users.push_back(MakeGpUser(0, 30));
  users.push_back(MakeGpUser(1, 30));
  ServeOnce(users[0], 0.2);
  ServeOnce(users[1], 0.2);
  HybridScheduler hybrid(/*patience=*/4);
  double reward = 0.3;
  for (int step = 0; step < 12; ++step) {
    auto pick = hybrid.PickUser(users, step + 3);
    ASSERT_TRUE(pick.ok());
    // Strictly improving rewards: the freeze detector must never fire.
    reward += 0.02;
    ServeOnce(users[*pick], reward);
    hybrid.OnOutcome(users, *pick);
  }
  EXPECT_FALSE(hybrid.switched());
}

TEST(HybridTest, RoundRobinAfterSwitch) {
  std::vector<UserState> users;
  users.push_back(MakeGpUser(0, 50));
  users.push_back(MakeGpUser(1, 50));
  users.push_back(MakeGpUser(2, 50));
  for (auto& u : users) ServeOnce(u, 0.5);
  HybridScheduler hybrid(/*patience=*/1);
  // One stagnant outcome flips the switch (patience 1).
  {
    auto pick = hybrid.PickUser(users, 4);
    ASSERT_TRUE(pick.ok());
    ServeOnce(users[*pick], 0.01);
    hybrid.OnOutcome(users, *pick);
    auto pick2 = hybrid.PickUser(users, 5);
    ASSERT_TRUE(pick2.ok());
    ServeOnce(users[*pick2], 0.01);
    hybrid.OnOutcome(users, *pick2);
  }
  ASSERT_TRUE(hybrid.switched());
  // After the switch, picks cycle round-robin over all active users.
  std::set<int> seen;
  for (int t = 0; t < 3; ++t) {
    auto pick = hybrid.PickUser(users, t + 6);
    ASSERT_TRUE(pick.ok());
    seen.insert(*pick);
    ServeOnce(users[*pick], 0.01);
    hybrid.OnOutcome(users, *pick);
  }
  EXPECT_EQ(seen.size(), 3u);
}

}  // namespace
}  // namespace easeml::scheduler

namespace easeml::scheduler {
namespace {

TEST(Line8RuleTest, AllRulesNamed) {
  EXPECT_EQ(Line8RuleName(Line8Rule::kMaxUcbGap), "max-ucb-gap");
  EXPECT_EQ(Line8RuleName(Line8Rule::kMaxEmpiricalBound),
            "max-empirical-bound");
  EXPECT_EQ(Line8RuleName(Line8Rule::kRandom), "random-candidate");
}

TEST(Line8RuleTest, MaxEmpiricalBoundPicksLargestSigma) {
  std::vector<UserState> users;
  for (int i = 0; i < 3; ++i) users.push_back(MakeGpUser(i, 4));
  // Larger gap between pending UCB and reward => larger sigma~.
  ServeOnce(users[0], 0.60);
  ServeOnce(users[1], 0.05);  // largest sigma~
  ServeOnce(users[2], 0.40);
  GreedyScheduler greedy(Line8Rule::kMaxEmpiricalBound);
  auto pick = greedy.PickUser(users, 4);
  ASSERT_TRUE(pick.ok());
  EXPECT_EQ(*pick, 1);
}

TEST(Line8RuleTest, RandomRuleStaysInsideCandidateSet) {
  std::vector<UserState> users;
  for (int i = 0; i < 4; ++i) users.push_back(MakeGpUser(i, 6));
  // User 0 nearly reaches its bound: below-average sigma~, not a candidate.
  ServeOnce(users[0], users[0].MaxUcb() - 0.001);
  for (int i = 1; i < 4; ++i) ServeOnce(users[i], 0.05);
  const auto candidates = ComputeCandidateSet(users);
  ASSERT_FALSE(candidates.empty());
  GreedyScheduler greedy(Line8Rule::kRandom, /*seed=*/7);
  for (int t = 0; t < 30; ++t) {
    auto pick = greedy.PickUser(users, t + 5);
    ASSERT_TRUE(pick.ok());
    EXPECT_NE(std::find(candidates.begin(), candidates.end(), *pick),
              candidates.end());
  }
}

TEST(Line8RuleTest, HybridAcceptsRuleAndSeed) {
  HybridScheduler hybrid(10, Line8Rule::kRandom, 3);
  EXPECT_EQ(hybrid.name(), "hybrid");
  EXPECT_FALSE(hybrid.switched());
}

}  // namespace
}  // namespace easeml::scheduler
