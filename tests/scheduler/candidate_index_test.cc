/// Unit tests for the incremental candidate index: descent queries are
/// checked against brute force over the same keys — including ARTIFICIAL
/// candidacy thresholds that force the pruned-argmax slow path (global
/// argmax not a candidate), which real campaigns hit only occasionally —
/// plus incremental-vs-rebuild equivalence and the Validate() invariant.
#include "scheduler/candidate_index.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include "bandit/gp_ucb.h"
#include "bandit/ucb1.h"
#include "common/rng.h"
#include "linalg/matrix.h"
#include "scheduler/user_state.h"

namespace easeml::scheduler {
namespace {

constexpr int kNone = CandidateIndex::kNone;

UserState MakeGpUser(int id, int k) {
  auto belief = gp::DiscreteArmGp::Create(linalg::Matrix::Identity(k), 0.01);
  EXPECT_TRUE(belief.ok());
  auto policy = bandit::GpUcbPolicy::CreateUnique(std::move(belief).value(),
                                                  bandit::GpUcbOptions());
  EXPECT_TRUE(policy.ok());
  auto state = UserState::Create(id, std::move(policy).value(),
                                 std::vector<double>(k, 1.0));
  EXPECT_TRUE(state.ok());
  return std::move(state).value();
}

/// A population in assorted phases: fresh, partially served, in-flight,
/// exhausted, retired — every leaf shape the index must summarize.
std::vector<UserState> MakePopulation(int n, int k, uint64_t seed) {
  Rng rng(seed);
  std::vector<UserState> users;
  for (int i = 0; i < n; ++i) {
    users.push_back(MakeGpUser(i, k));
    UserState& u = users.back();
    const int steps = rng.UniformInt(0, k);
    for (int s = 0; s < steps && !u.Exhausted(); ++s) {
      auto arm = u.SelectArm();
      EXPECT_TRUE(arm.ok());
      EXPECT_TRUE(u.RecordOutcome(*arm, 0.1 + 0.8 * rng.Uniform()).ok());
    }
    if (!u.Exhausted() && rng.UniformInt(0, 4) == 0) {
      EXPECT_TRUE(u.SelectArm().ok());  // leave one selection in flight
    }
    if (!u.has_pending() && rng.UniformInt(0, 6) == 0) u.Retire();
  }
  return users;
}

std::vector<std::vector<int>> SplitPlacement(int n, int shards) {
  std::vector<std::vector<int>> locals(shards);
  for (int i = 0; i < n; ++i) locals[i % shards].push_back(i);
  return locals;  // each ascending
}

/// Brute-force argmax over candidates with the scan's fold semantics.
CandidateIndex::Best BruteBest(const CandidateIndex& index, int n,
                               const CandidateIndex::Candidacy& candidacy,
                               bool use_gap) {
  CandidateIndex::Best best;
  for (int i = 0; i < n; ++i) {
    const CandidateIndex::TenantKey& key = index.Key(i);
    if (!key.schedulable || !candidacy.Admits(key.bound)) continue;
    const double value = use_gap ? key.gap : key.bound;
    // The scan's fold: -inf sentinel, strictly-greater wins, ascending ids
    // keep the lowest id among exact ties; NaN never wins.
    if (value > best.key) {
      best.key = value;
      best.user = i;
    }
  }
  return best;
}

int BruteMinCandidate(const CandidateIndex& index, int n,
                      const CandidateIndex::Candidacy& candidacy) {
  for (int i = 0; i < n; ++i) {
    const CandidateIndex::TenantKey& key = index.Key(i);
    if (key.schedulable && candidacy.Admits(key.bound)) return i;
  }
  return kNone;
}

TEST(CandidateIndexTest, DescentsMatchBruteForceUnderForcedThresholds) {
  constexpr int kUsers = 41;
  constexpr int kModels = 4;
  for (int shards : {1, 3, 4}) {
    auto users = MakePopulation(kUsers, kModels, 1234 + shards);
    CandidateIndex index(shards);
    index.SyncPlacement(SplitPlacement(kUsers, shards), users);
    ASSERT_TRUE(index.Validate(users).ok());

    // Real aggregates...
    ExactDoubleSum real_sum;
    int real_finite = 0;
    for (int s = 0; s < shards; ++s) {
      real_sum.Merge(index.BoundSum(s));
      real_finite += index.FiniteCount(s);
    }
    // ...plus artificial ones that push the threshold through the whole
    // bound range, forcing every pruning branch: thresholds between the
    // minimum and far above the maximum (global argmax not a candidate).
    std::vector<std::pair<ExactDoubleSum, int>> contexts;
    contexts.emplace_back(real_sum, real_finite);
    for (double target : {0.0, 0.5, 1.0, 2.0, 5.0, 50.0}) {
      ExactDoubleSum forced;  // mean == target, so candidacy = bound >= target
      forced.Add(target);
      contexts.emplace_back(forced, 1);
    }
    contexts.emplace_back(ExactDoubleSum(), 0);  // all-candidates mode

    for (const auto& [sum, finite] : contexts) {
      CandidateIndex::Candidacy candidacy;
      candidacy.sum = &sum;
      candidacy.finite_count = finite;
      candidacy.all_candidates = finite == 0;
      for (bool use_gap : {true, false}) {
        CandidateIndex::Best got;
        for (int s = 0; s < shards; ++s) {
          got = index.BestCandidate(s, candidacy, use_gap, got);
        }
        const CandidateIndex::Best expected =
            BruteBest(index, kUsers, candidacy, use_gap);
        EXPECT_EQ(got.user, expected.user)
            << "shards=" << shards << " finite=" << finite
            << " use_gap=" << use_gap;
        if (expected.user != kNone) {
          EXPECT_EQ(got.key, expected.key);
        }
      }
      int got_min = kNone;
      for (int s = 0; s < shards; ++s) {
        got_min = std::min(got_min, index.MinCandidate(s, candidacy));
      }
      EXPECT_EQ(got_min, BruteMinCandidate(index, kUsers, candidacy))
          << "shards=" << shards << " finite=" << finite;
    }

    // Rank and suffix queries against brute force, at every boundary.
    for (int floor_id = 0; floor_id <= kUsers; ++floor_id) {
      int got = kNone;
      int expected = kNone;
      int got_count = 0;
      int expected_count = 0;
      for (int s = 0; s < shards; ++s) {
        got = std::min(got, index.MinSchedulableAtLeast(s, floor_id));
        got_count += index.CountSchedulableLeq(s, floor_id);
      }
      for (int i = 0; i < kUsers; ++i) {
        if (!index.Key(i).schedulable) continue;
        if (i >= floor_id && expected == kNone) expected = i;
        if (i <= floor_id) ++expected_count;
      }
      EXPECT_EQ(got, expected) << "floor=" << floor_id;
      EXPECT_EQ(got_count, expected_count) << "cap=" << floor_id;
    }
  }
}

TEST(CandidateIndexTest, RefreshTracksEveryTenantEvent) {
  constexpr int kUsers = 17;
  constexpr int kModels = 3;
  auto users = MakePopulation(kUsers, kModels, 99);
  CandidateIndex index(2);
  index.SyncPlacement(SplitPlacement(kUsers, 2), users);
  Rng rng(5);
  for (int step = 0; step < 300; ++step) {
    const int i = rng.UniformInt(0, kUsers - 1);
    UserState& u = users[i];
    if (u.retired()) {
      // retired tenants stay neutral; a refresh must keep them so
    } else if (u.has_pending()) {
      const int arm = [&] {
        for (int a = 0; a < kModels; ++a) {
          if (u.InFlight(a)) return a;
        }
        return -1;
      }();
      if (rng.UniformInt(0, 3) == 0) {
        ASSERT_TRUE(u.CancelSelection(arm).ok());
      } else {
        ASSERT_TRUE(u.RecordOutcome(arm, 0.1 + 0.8 * rng.Uniform()).ok());
      }
    } else if (u.Exhausted()) {
      u.Retire();
    } else if (rng.UniformInt(0, 5) == 0 && !u.has_pending()) {
      u.Retire();
    } else {
      ASSERT_TRUE(u.SelectArm().ok());
    }
    index.Refresh(users[i]);
    if (step % 50 == 49) {
      const Status valid = index.Validate(users);
      ASSERT_TRUE(valid.ok()) << "step " << step << ": " << valid.ToString();
    }
  }
  EXPECT_TRUE(index.Validate(users).ok());
}

TEST(CandidateIndexTest, ValidateCatchesStaleLeaf) {
  constexpr int kUsers = 6;
  auto users = MakePopulation(kUsers, 3, 7);
  CandidateIndex index(2);
  index.SyncPlacement(SplitPlacement(kUsers, 2), users);
  ASSERT_TRUE(index.Validate(users).ok());
  // Mutate a tenant WITHOUT refreshing: the invalidation-contract breach
  // the invariant check exists to catch.
  int victim = -1;
  for (int i = 0; i < kUsers; ++i) {
    if (users[i].Schedulable()) {
      victim = i;
      break;
    }
  }
  ASSERT_NE(victim, -1);
  ASSERT_TRUE(users[victim].SelectArm().ok());
  const Status stale = index.Validate(users);
  EXPECT_FALSE(stale.ok());
  EXPECT_EQ(stale.code(), StatusCode::kInternal);
  index.Refresh(users[victim]);
  EXPECT_TRUE(index.Validate(users).ok());
}

TEST(CandidateIndexTest, BadPolicyTenantsSurfaceInRoots) {
  std::vector<UserState> users;
  users.push_back(MakeGpUser(0, 3));
  auto ucb1 = std::make_unique<bandit::Ucb1Policy>(3);
  auto state =
      UserState::Create(1, std::move(ucb1), std::vector<double>(3, 1.0));
  ASSERT_TRUE(state.ok());
  users.push_back(std::move(state).value());
  CandidateIndex index(1);
  index.SyncPlacement({{0, 1}}, users);
  EXPECT_EQ(index.Root(0).min_bad_policy, 1);
  EXPECT_EQ(index.Root(0).min_uninitialized, 0);
  EXPECT_EQ(index.Root(0).cnt_schedulable, 2);
}

}  // namespace
}  // namespace easeml::scheduler
