/// Reproduces Figure 9: end-to-end performance of ease.ml on DEEPLEARNING
/// against the two heuristics users ran before ease.ml existed (most-cited
/// network first, most recently published network first; both round-robin
/// across users). x-axis: % of total cost; 10% total-runtime budget; 10 test
/// users; 50 repetitions. The paper's headline: up to 9.8x faster on average
/// accuracy loss, 3.1x on worst-case.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "core/experiment_runner.h"

namespace {

using easeml::core::ProtocolOptions;
using easeml::core::RunStrategies;
using easeml::core::StrategyKind;

ProtocolOptions Options() {
  ProtocolOptions opts;
  opts.num_test_users = 10;
  opts.num_reps = easeml::benchutil::BenchReps(50);
  opts.budget_fraction = 0.10;  // "we run it for 10% of the total runtime"
  opts.cost_aware_budget = true;
  opts.cost_aware_policy = true;
  opts.seed = 42;
  return opts;
}

void RunFigure() {
  easeml::benchutil::PrintFigureHeader(
      "FIG9", "End-to-end: ease.ml vs MOSTCITED / MOSTRECENT "
              "(DEEPLEARNING, cost-aware)");
  const auto ds = easeml::benchutil::DeepLearning();
  auto results = RunStrategies(ds,
                               {StrategyKind::kEaseMl,
                                StrategyKind::kMostCited,
                                StrategyKind::kMostRecent},
                               Options());
  EASEML_CHECK(results.ok()) << results.status().ToString();
  easeml::benchutil::PrintCurvesCsv("FIG9", ds.name, "pct_total_cost",
                                    *results);
  easeml::benchutil::PrintSummaryTable(ds.name, *results,
                                       {0.10, 0.06, 0.02});
}

void BM_EaseMlEndToEndRep(benchmark::State& state) {
  const auto ds = easeml::benchutil::DeepLearning();
  ProtocolOptions opts = Options();
  opts.num_reps = 1;
  opts.tune_hyperparameters = false;
  for (auto _ : state) {
    auto r = easeml::core::RunProtocol(ds, StrategyKind::kEaseMl, opts);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_EaseMlEndToEndRep);

}  // namespace

int main(int argc, char** argv) {
  RunFigure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
