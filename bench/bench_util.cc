#include "bench/bench_util.h"

#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "common/csv.h"
#include "common/logging.h"
#include "common/table.h"
#include "data/classifier179.h"
#include "data/deeplearning.h"
#include "data/synthetic_generator.h"
#include "sim/metrics.h"

namespace easeml::benchutil {

data::Dataset DeepLearning() {
  auto ds = data::GenerateDeepLearning(data::DeepLearningOptions());
  EASEML_CHECK(ds.ok()) << ds.status().ToString();
  return std::move(ds).value();
}

data::Dataset Classifier179() {
  auto ds = data::GenerateClassifier179(data::Classifier179Options());
  EASEML_CHECK(ds.ok()) << ds.status().ToString();
  return std::move(ds).value();
}

std::vector<data::Dataset> AllSixDatasets() {
  std::vector<data::Dataset> out;
  out.push_back(DeepLearning());
  out.push_back(Classifier179());
  // The four SYN(sigma_M, alpha) datasets of Figure 8: 200 users x 100
  // models.
  for (double sigma_m : {0.01, 0.5}) {
    for (double alpha : {0.1, 1.0}) {
      data::SimpleSynOptions opts;
      opts.sigma_m = sigma_m;
      opts.alpha = alpha;
      auto ds = data::GenerateSimpleSyn(opts);
      EASEML_CHECK(ds.ok()) << ds.status().ToString();
      out.push_back(std::move(ds).value());
    }
  }
  return out;
}

int BenchReps(int fallback) {
  const char* env = std::getenv("EASEML_BENCH_REPS");
  if (env != nullptr) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return fallback;
}

void PrintFigureHeader(const std::string& figure_id,
                       const std::string& title) {
  std::cout << "\n=== " << figure_id << ": " << title << " ===\n";
}

void PrintCurvesCsv(const std::string& figure_id, const std::string& dataset,
                    const std::string& x_label,
                    const std::vector<core::StrategyResult>& results) {
  CsvWriter csv(std::cout, {"figure", "dataset", "x_label", "x", "series",
                            "metric", "value"});
  for (const auto& r : results) {
    for (size_t i = 0; i < r.curves.grid.size(); ++i) {
      // Thin the output: every 5th grid point is enough to replot.
      if (i % 5 != 0 && i + 1 != r.curves.grid.size()) continue;
      const std::string x = Table::FormatDouble(r.curves.grid[i], 2);
      (void)csv.WriteRow({figure_id, dataset, x_label, x, r.strategy_name,
                          "avg_loss",
                          Table::FormatDouble(r.curves.mean[i], 5)});
      (void)csv.WriteRow({figure_id, dataset, x_label, x, r.strategy_name,
                          "worst_loss",
                          Table::FormatDouble(r.curves.worst[i], 5)});
    }
  }
}

void PrintSummaryTable(const std::string& dataset,
                       const std::vector<core::StrategyResult>& results,
                       const std::vector<double>& target_losses) {
  Table table({"dataset", "strategy", "final_avg_loss", "final_worst_loss",
               "auc"});
  for (const auto& r : results) {
    table.AddRow({dataset, r.strategy_name,
                  Table::FormatDouble(r.curves.mean.back(), 5),
                  Table::FormatDouble(r.curves.worst.back(), 5),
                  Table::FormatDouble(r.mean_auc, 5)});
  }
  table.Print(std::cout);
  if (results.size() < 2) return;
  // Auto target: just above the worst final loss, so every strategy's mean
  // curve crosses it and the headline speedup is always defined.
  double auto_target = 0.0;
  for (const auto& r : results) {
    auto_target = std::max(auto_target, r.curves.mean.back());
  }
  auto_target += 0.005;
  std::vector<double> targets = target_losses;
  targets.push_back(auto_target);
  for (double target : targets) {
    for (size_t i = 1; i < results.size(); ++i) {
      auto speedup = sim::SpeedupToReach(results[0].curves,
                                         results[i].curves, target);
      std::cout << "speedup(" << results[0].strategy_name << " vs "
                << results[i].strategy_name << ", target avg loss "
                << target << "): "
                << (speedup.ok() ? Table::FormatDouble(*speedup, 2) + "x"
                                 : std::string("n/a (target not reached)"))
                << "\n";
    }
  }
}

}  // namespace easeml::benchutil
