/// EXTENSION (paper Sections 4.5 and 5.3.2, "Single- vs Multi-Devices"):
/// the paper treats the whole GPU pool as one device and argues this beats
/// the one-GPU-per-user alternative because models finish sooner. This
/// bench quantifies that trade-off with the event-driven multi-device
/// simulator: a fixed 8-GPU capacity split into 1 / 2 / 4 / 8 devices.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bandit/gp_ucb.h"
#include "bench/bench_util.h"
#include "common/logging.h"
#include "common/table.h"
#include "data/model_features.h"
#include "data/splits.h"
#include "gp/kernel.h"
#include "scheduler/round_robin.h"
#include "sim/multi_device.h"

namespace {

using easeml::Rng;
using easeml::Table;

easeml::sim::LossCurve RunRep(const easeml::data::Dataset& ds, int devices,
                              uint64_t seed) {
  Rng rng(seed);
  auto split = easeml::data::SplitUsers(ds.num_users(), 10, rng);
  EASEML_CHECK(split.ok());
  auto features = easeml::data::ComputeModelFeatures(ds, split->train_users);
  EASEML_CHECK(features.ok());
  auto global_mean =
      easeml::data::ComputeGlobalMeanQuality(ds, split->train_users);
  EASEML_CHECK(global_mean.ok());
  for (auto& f : *features) {
    for (double& v : f) v /= std::sqrt(static_cast<double>(f.size()));
  }
  easeml::gp::RbfKernel kernel(0.2, 0.05);
  auto gram = kernel.BuildGram(*features);
  EASEML_CHECK(gram.ok());
  gram->AddToDiagonal(1e-8);

  auto test_ds = ds.SelectUsers(split->test_users);
  EASEML_CHECK(test_ds.ok());
  auto env = easeml::sim::Environment::Create(std::move(*test_ds));
  EASEML_CHECK(env.ok());

  std::vector<easeml::scheduler::UserState> users;
  for (int i = 0; i < env->num_users(); ++i) {
    auto belief = easeml::gp::DiscreteArmGp::Create(
        *gram, 1e-3,
        std::vector<double>(ds.num_models(), *global_mean));
    EASEML_CHECK(belief.ok());
    easeml::bandit::GpUcbOptions ucb;
    ucb.cost_aware = true;
    ucb.costs = env->CostsForUser(i);
    auto policy = easeml::bandit::GpUcbPolicy::CreateUnique(
        std::move(belief).value(), ucb);
    EASEML_CHECK(policy.ok());
    auto state = easeml::scheduler::UserState::Create(
        i, std::move(policy).value(), env->CostsForUser(i));
    EASEML_CHECK(state.ok());
    users.push_back(std::move(state).value());
  }
  easeml::scheduler::RoundRobinScheduler rr;
  easeml::sim::MultiDeviceOptions opts;
  opts.num_devices = devices;
  opts.total_capacity = 8.0;
  opts.budget_fraction = 0.5;
  auto result = easeml::sim::RunMultiDeviceSimulation(*env, users, rr, opts);
  EASEML_CHECK(result.ok());
  return std::move(result->curve);
}

void RunFigure() {
  easeml::benchutil::PrintFigureHeader(
      "EXT-DEVICES",
      "Single vs multi device: fixed 8-GPU capacity, 1/2/4/8 devices "
      "(DEEPLEARNING, wall-clock budget)");
  const auto ds = easeml::benchutil::DeepLearning();
  const int reps = easeml::benchutil::BenchReps(30);
  Table table({"devices", "mean_auc", "final_avg_loss", "loss@25%"});
  for (int devices : {1, 2, 4, 8}) {
    std::vector<easeml::sim::LossCurve> curves;
    for (int r = 0; r < reps; ++r) {
      curves.push_back(RunRep(ds, devices, 2000 + r));
    }
    auto agg = easeml::sim::Aggregate(curves);
    EASEML_CHECK(agg.ok());
    const size_t q = agg->grid.size() / 4;
    table.AddRow({std::to_string(devices),
                  Table::FormatDouble(
                      easeml::sim::AreaUnderCurve(agg->grid, agg->mean), 5),
                  Table::FormatDouble(agg->mean.back(), 5),
                  Table::FormatDouble(agg->mean[q], 5)});
  }
  table.Print(std::cout);
  std::cout << "Expected shape: 1 device has the lowest AUC (models return "
               "sooner), matching the paper's single-device design choice; "
               "the gap narrows as models' costs homogenize.\n";
}

void BM_MultiDeviceRep(benchmark::State& state) {
  const auto ds = easeml::benchutil::DeepLearning();
  for (auto _ : state) {
    auto curve = RunRep(ds, 4, 7);
    benchmark::DoNotOptimize(curve);
  }
}
BENCHMARK(BM_MultiDeviceRep);

}  // namespace

int main(int argc, char** argv) {
  RunFigure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
