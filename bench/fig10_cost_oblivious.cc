/// Reproduces Figure 10: the cost-oblivious multi-tenant case. For each of
/// the six datasets, average and worst-case accuracy loss of ease.ml vs
/// ROUNDROBIN vs RANDOM (all running GP-UCB inside each user) as a function
/// of % of runs, with a 50%-of-all-models budget.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "core/experiment_runner.h"

namespace {

using easeml::core::ProtocolOptions;
using easeml::core::RunStrategies;
using easeml::core::StrategyKind;

ProtocolOptions Options() {
  ProtocolOptions opts;
  opts.num_test_users = 10;
  opts.num_reps = easeml::benchutil::BenchReps(50);
  opts.budget_fraction = 0.5;  // "train 50% of all available models"
  opts.cost_aware_budget = false;
  opts.cost_aware_policy = false;
  opts.seed = 42;
  return opts;
}

void RunFigure() {
  easeml::benchutil::PrintFigureHeader(
      "FIG10", "Cost-oblivious multi-tenant model selection (six datasets)");
  for (const auto& ds : easeml::benchutil::AllSixDatasets()) {
    auto results = RunStrategies(ds,
                                 {StrategyKind::kEaseMl,
                                  StrategyKind::kRoundRobin,
                                  StrategyKind::kRandom},
                                 Options());
    EASEML_CHECK(results.ok()) << results.status().ToString();
    easeml::benchutil::PrintCurvesCsv("FIG10", ds.name, "pct_runs",
                                      *results);
    easeml::benchutil::PrintSummaryTable(ds.name, *results,
                                         {0.10, 0.05, 0.02});
  }
}

void BM_CostObliviousRepSyn(benchmark::State& state) {
  const auto datasets = easeml::benchutil::AllSixDatasets();
  ProtocolOptions opts = Options();
  opts.num_reps = 1;
  opts.tune_hyperparameters = false;
  for (auto _ : state) {
    auto r = easeml::core::RunProtocol(datasets[2], StrategyKind::kEaseMl,
                                       opts);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_CostObliviousRepSyn);

}  // namespace

int main(int argc, char** argv) {
  RunFigure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
