/// Ablation of the GP-UCB exploration schedule: the practical Algorithm-1
/// beta_t = log(K t^2 / delta) vs the Theorem-1 theoretical schedule
/// beta_t = 2 c* log(pi^2 K t^2 / (6 delta)). Theory requires the larger
/// beta for the high-probability bound; practice over-explores with it.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "core/experiment_runner.h"

namespace {

using easeml::core::ProtocolOptions;
using easeml::core::RunProtocol;
using easeml::core::StrategyKind;

ProtocolOptions Options(bool theoretical) {
  ProtocolOptions opts;
  opts.num_test_users = 10;
  opts.num_reps = easeml::benchutil::BenchReps(50);
  opts.budget_fraction = 0.5;
  opts.cost_aware_budget = true;
  opts.cost_aware_policy = true;
  opts.theoretical_beta = theoretical;
  opts.seed = 42;
  return opts;
}

void RunFigure() {
  easeml::benchutil::PrintFigureHeader(
      "ABLATION-BETA",
      "Practical vs theoretical beta schedule (DEEPLEARNING, cost-aware)");
  const auto ds = easeml::benchutil::DeepLearning();
  std::vector<easeml::core::StrategyResult> results;
  for (bool theoretical : {false, true}) {
    auto r = RunProtocol(ds, StrategyKind::kEaseMl, Options(theoretical));
    EASEML_CHECK(r.ok()) << r.status().ToString();
    r->strategy_name = theoretical ? "ease.ml theoretical-beta"
                                   : "ease.ml practical-beta";
    results.push_back(std::move(*r));
  }
  easeml::benchutil::PrintCurvesCsv("ABLATION-BETA", ds.name,
                                    "pct_total_cost", results);
  easeml::benchutil::PrintSummaryTable(ds.name, results, {0.05, 0.02});
}

void BM_TheoreticalBetaRep(benchmark::State& state) {
  const auto ds = easeml::benchutil::DeepLearning();
  ProtocolOptions opts = Options(true);
  opts.num_reps = 1;
  opts.tune_hyperparameters = false;
  for (auto _ : state) {
    auto r = RunProtocol(ds, StrategyKind::kEaseMl, opts);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_TheoreticalBetaRep);

}  // namespace

int main(int argc, char** argv) {
  RunFigure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
