/// Reproduces Figure 13 (lesion study): the impact of cost-awareness.
/// DEEPLEARNING with a cost budget; ease.ml with the cost-aware index
/// sqrt(beta/c) vs ease.ml with the index disabled (c == 1 inside GP-UCB).
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "core/experiment_runner.h"

namespace {

using easeml::core::ProtocolOptions;
using easeml::core::RunProtocol;
using easeml::core::StrategyKind;

ProtocolOptions Options(bool cost_aware_policy) {
  ProtocolOptions opts;
  opts.num_test_users = 10;
  opts.num_reps = easeml::benchutil::BenchReps(50);
  opts.budget_fraction = 0.10;
  opts.cost_aware_budget = true;
  opts.cost_aware_policy = cost_aware_policy;
  opts.seed = 42;
  return opts;
}

void RunFigure() {
  easeml::benchutil::PrintFigureHeader(
      "FIG13", "Lesion study: cost-awareness on DEEPLEARNING");
  const auto ds = easeml::benchutil::DeepLearning();
  auto aware = RunProtocol(ds, StrategyKind::kEaseMl, Options(true));
  EASEML_CHECK(aware.ok()) << aware.status().ToString();
  auto oblivious = RunProtocol(ds, StrategyKind::kEaseMl, Options(false));
  EASEML_CHECK(oblivious.ok()) << oblivious.status().ToString();
  oblivious->strategy_name = "ease.ml w/o cost";
  std::vector<easeml::core::StrategyResult> results;
  results.push_back(std::move(*aware));
  results.push_back(std::move(*oblivious));
  easeml::benchutil::PrintCurvesCsv("FIG13", ds.name, "pct_total_cost",
                                    results);
  easeml::benchutil::PrintSummaryTable(ds.name, results,
                                       {0.10, 0.06, 0.02});
}

void BM_CostAwareLesionRep(benchmark::State& state) {
  const auto ds = easeml::benchutil::DeepLearning();
  ProtocolOptions opts = Options(false);
  opts.num_reps = 1;
  opts.tune_hyperparameters = false;
  for (auto _ : state) {
    auto r = RunProtocol(ds, StrategyKind::kEaseMl, opts);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_CostAwareLesionRep);

}  // namespace

int main(int argc, char** argv) {
  RunFigure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
