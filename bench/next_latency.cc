/// Next() critical-path latency: O(T) scan vs incremental candidate index.
///
/// The serving hot path of the selector is the per-`Next()` user-picking
/// cost. The scan engines rescan all T tenants (GREEDY additionally reads
/// the batched MaxUcb diagnostics of every candidate) even though a Report
/// changes one tenant's summary; the candidate index replays one O(log T)
/// leaf path per event and answers the pick from the shard roots. This
/// bench sweeps T with BOTH engines on identical campaigns (the traces are
/// bit-identical — pinned by the index/scan conformance suite) and reports
/// the per-call cost of `Next()` and `Report()` separately, because the
/// index deliberately moves work to the report path (the leaf refresh).
///
/// Timing follows the single-core bench protocol: CLOCK_THREAD_CPUTIME_ID
/// around each call on the driving thread (num_shards = 1, so both engines
/// run entirely on it) — thread CPU clocks are not inflated by host
/// oversubscription, unlike wall time on this one-core container.
///
/// Machine-readable rows for scripts/bench.sh:
///   NEXT_LATENCY,<tenants>,<engine>,<next_us_mean>,<report_us_mean>
#include <ctime>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "core/multi_tenant_selector.h"
#include "gp/shared_prior_gp.h"
#include "linalg/matrix.h"
#include "shard/sharded_selector.h"

namespace {

using easeml::core::MultiTenantSelector;
using easeml::core::SchedulerKind;
using easeml::core::SelectorOptions;

constexpr int kModels = 6;
constexpr int kMeasureSteps = 200;

double ThreadCpuSeconds() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + 1e-9 * ts.tv_nsec;
}

/// Deterministic ground-truth accuracy in (0, 1) via an integer hash.
double Accuracy(int tenant, int model) {
  const uint64_t x = easeml::SplitMix64(static_cast<uint64_t>(tenant) *
                                            1000003u +
                                        static_cast<uint64_t>(model));
  return 0.05 + 0.9 * (static_cast<double>(x >> 11) * 0x1.0p-53);
}

struct Cell {
  double next_us = 0.0;    // mean thread-CPU microseconds per Next()
  double report_us = 0.0;  // mean thread-CPU microseconds per Report()
};

Cell RunCampaign(int tenants, bool use_index) {
  SelectorOptions options;
  options.scheduler = SchedulerKind::kGreedy;
  options.cost_aware = true;
  options.num_devices = 1;
  options.num_shards = 1;  // both engines on the driving thread: the thread
                           // CPU clock IS the critical path for each
  options.use_candidate_index = use_index;
  auto created = easeml::shard::MakeSelector(options);
  EASEML_CHECK(created.ok()) << created.status().ToString();
  MultiTenantSelector* selector = created->get();

  auto prior = easeml::gp::MakeSharedGpPrior(
      easeml::linalg::Matrix::Identity(kModels), 1e-2);
  EASEML_CHECK(prior.ok()) << prior.status().ToString();
  for (int t = 0; t < tenants; ++t) {
    std::vector<double> costs;
    for (int m = 0; m < kModels; ++m) {
      costs.push_back(1.0 + 0.25 * ((t + m) % kModels));
    }
    EASEML_CHECK(selector->AddTenant(*prior, costs).ok());
  }

  // Initialization sweep (Algorithm 2 lines 1-4): serve every tenant once
  // so measurement happens in the regular GREEDY regime.
  for (int t = 0; t < tenants; ++t) {
    auto a = selector->Next();
    EASEML_CHECK(a.ok()) << a.status().ToString();
    EASEML_CHECK(selector->Report(*a, Accuracy(a->tenant, a->model)).ok());
  }

  // Steady state: K-1 arms per tenant remain, far more than kMeasureSteps.
  Cell cell;
  for (int step = 0; step < kMeasureSteps; ++step) {
    const double t0 = ThreadCpuSeconds();
    auto a = selector->Next();
    const double t1 = ThreadCpuSeconds();
    EASEML_CHECK(a.ok()) << a.status().ToString();
    EASEML_CHECK(selector->Report(*a, Accuracy(a->tenant, a->model)).ok());
    const double t2 = ThreadCpuSeconds();
    cell.next_us += (t1 - t0) * 1e6;
    cell.report_us += (t2 - t1) * 1e6;
  }
  cell.next_us /= kMeasureSteps;
  cell.report_us /= kMeasureSteps;
  return cell;
}

}  // namespace

int main() {
  std::printf(
      "# Next() critical path: scan vs candidate index (GREEDY, K=%d, D=1, "
      "shared prior, %d steady-state steps, thread-CPU clocks)\n",
      kModels, kMeasureSteps);
  std::printf("%8s %7s | %14s %14s | %13s\n", "tenants", "engine",
              "next_us_mean", "report_us_mean", "next_speedup");
  for (int tenants : {1000, 10000, 100000}) {
    Cell scan;
    for (const bool use_index : {false, true}) {
      const Cell cell = RunCampaign(tenants, use_index);
      if (!use_index) scan = cell;
      std::printf("%8d %7s | %14.3f %14.3f | %12.2fx\n", tenants,
                  use_index ? "index" : "scan", cell.next_us, cell.report_us,
                  use_index ? scan.next_us / cell.next_us : 1.0);
      std::printf("NEXT_LATENCY,%d,%s,%.3f,%.3f\n", tenants,
                  use_index ? "index" : "scan", cell.next_us, cell.report_us);
    }
  }
  return 0;
}
