/// Next() critical-path latency: O(T) scan vs incremental candidate index.
///
/// The serving hot path of the selector is the per-`Next()` user-picking
/// cost. The scan engines rescan all T tenants (GREEDY additionally reads
/// the batched MaxUcb diagnostics of every candidate) even though a Report
/// changes one tenant's summary; the candidate index replays one O(log T)
/// leaf path per event and answers the pick from the shard roots. This
/// bench sweeps T with BOTH engines on identical campaigns (the traces are
/// bit-identical — pinned by the index/scan conformance suite) and reports
/// the per-call cost of `Next()` and `Report()` separately, because the
/// index deliberately moves work to the report path (the leaf refresh).
///
/// Timing follows the single-core bench protocol: CLOCK_THREAD_CPUTIME_ID
/// around each call on the driving thread (num_shards = 1, so both engines
/// run entirely on it) — thread CPU clocks are not inflated by host
/// oversubscription, unlike wall time on this one-core container.
///
/// A second section measures the shard-parallel REPORT pipeline: the
/// sharded engine validates a completion under its coordinator lock and
/// queues the O(t^2) belief fold on the tenant's owning shard worker, so
/// D in-flight completions fold concurrently across N shards instead of
/// serializing under the engine lock. The driver fills all D device slots,
/// hands the D completions back in a burst, and charges the burst's fold
/// cost at its parallel critical path — the max over shard workers of the
/// CLOCK_THREAD_CPUTIME_ID delta (the same protocol bench/scaling_shards
/// uses; on this one-core container wall time cannot show the overlap, the
/// per-worker CPU clocks can). `report_us_mean` is that critical path per
/// completion: N=1 is the serialized engine (every fold on one worker);
/// it should fall roughly with the shard count at fixed D.
///
/// Machine-readable rows for scripts/bench.sh:
///   NEXT_LATENCY,<tenants>,<engine>,<next_us_mean>,<report_us_mean>
///   REPORT_TP,<tenants>,<devices>,<shards>,<reports>,<report_us_mean>,<coord_us_mean>,<wall_us_mean>
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <vector>

#include "common/clock.h"
#include "common/logging.h"
#include "common/rng.h"
#include "core/multi_tenant_selector.h"
#include "gp/shared_prior_gp.h"
#include "linalg/matrix.h"
#include "shard/sharded_selector.h"

namespace {

using easeml::core::MultiTenantSelector;
using easeml::core::SchedulerKind;
using easeml::core::SelectorOptions;

constexpr int kModels = 6;
constexpr int kMeasureSteps = 200;

using easeml::ThreadCpuSeconds;

/// Deterministic ground-truth accuracy in (0, 1) via an integer hash.
double Accuracy(int tenant, int model) {
  const uint64_t x = easeml::SplitMix64(static_cast<uint64_t>(tenant) *
                                            1000003u +
                                        static_cast<uint64_t>(model));
  return 0.05 + 0.9 * (static_cast<double>(x >> 11) * 0x1.0p-53);
}

struct Cell {
  double next_us = 0.0;    // mean thread-CPU microseconds per Next()
  double report_us = 0.0;  // mean thread-CPU microseconds per Report()
};

Cell RunCampaign(int tenants, bool use_index) {
  SelectorOptions options;
  options.scheduler = SchedulerKind::kGreedy;
  options.cost_aware = true;
  options.num_devices = 1;
  options.num_shards = 1;  // both engines on the driving thread: the thread
                           // CPU clock IS the critical path for each
  options.use_candidate_index = use_index;
  auto created = easeml::shard::MakeSelector(options);
  EASEML_CHECK(created.ok()) << created.status().ToString();
  MultiTenantSelector* selector = created->get();

  auto prior = easeml::gp::MakeSharedGpPrior(
      easeml::linalg::Matrix::Identity(kModels), 1e-2);
  EASEML_CHECK(prior.ok()) << prior.status().ToString();
  for (int t = 0; t < tenants; ++t) {
    std::vector<double> costs;
    for (int m = 0; m < kModels; ++m) {
      costs.push_back(1.0 + 0.25 * ((t + m) % kModels));
    }
    EASEML_CHECK(selector->AddTenant(*prior, costs).ok());
  }

  // Initialization sweep (Algorithm 2 lines 1-4): serve every tenant once
  // so measurement happens in the regular GREEDY regime.
  for (int t = 0; t < tenants; ++t) {
    auto a = selector->Next();
    EASEML_CHECK(a.ok()) << a.status().ToString();
    EASEML_CHECK(selector->Report(*a, Accuracy(a->tenant, a->model)).ok());
  }

  // Steady state: K-1 arms per tenant remain, far more than kMeasureSteps.
  Cell cell;
  for (int step = 0; step < kMeasureSteps; ++step) {
    const double t0 = ThreadCpuSeconds();
    auto a = selector->Next();
    const double t1 = ThreadCpuSeconds();
    EASEML_CHECK(a.ok()) << a.status().ToString();
    EASEML_CHECK(selector->Report(*a, Accuracy(a->tenant, a->model)).ok());
    const double t2 = ThreadCpuSeconds();
    cell.next_us += (t1 - t0) * 1e6;
    cell.report_us += (t2 - t1) * 1e6;
  }
  cell.next_us /= kMeasureSteps;
  cell.report_us /= kMeasureSteps;
  return cell;
}

double WallSeconds() { return easeml::MonotonicSeconds(); }

struct TpCell {
  int reports = 0;
  double report_us = 0.0;  // fold critical path (max over workers) per report
  double coord_us = 0.0;   // driver CPU inside the Report() calls per report
  double wall_us = 0.0;    // wall per report, burst dispatch to full drain
};

/// One report-throughput campaign: D device slots, N shards, GREEDY +
/// candidate index (Report carries the leaf refresh). The driver
/// alternates slot-filling Next() bursts with Report() bursts; the
/// coordinator phase returns immediately (GREEDY's OnOutcome observes
/// nothing), so the burst's folds overlap across shards even though the
/// driver is one thread — concurrent reporter threads would measure the
/// same fold pipeline plus lock contention noise.
TpCell RunReportThroughput(int tenants, int devices, int shards) {
  SelectorOptions options;
  options.scheduler = SchedulerKind::kGreedy;
  options.cost_aware = true;
  options.num_devices = devices;
  options.num_shards = shards;
  options.use_candidate_index = true;
  // Build the sharded engine even at N=1: the serialized baseline must pay
  // the same queue machinery, so the column isolates the parallelism.
  auto created = easeml::shard::ShardedMultiTenantSelector::Create(options);
  EASEML_CHECK(created.ok()) << created.status().ToString();
  easeml::shard::ShardedMultiTenantSelector* selector = created->get();

  auto prior = easeml::gp::MakeSharedGpPrior(
      easeml::linalg::Matrix::Identity(kModels), 1e-2);
  EASEML_CHECK(prior.ok()) << prior.status().ToString();
  for (int t = 0; t < tenants; ++t) {
    std::vector<double> costs;
    for (int m = 0; m < kModels; ++m) {
      costs.push_back(1.0 + 0.25 * ((t + m) % kModels));
    }
    EASEML_CHECK(selector->AddTenant(*prior, costs).ok());
  }
  // Initialization sweep, unmeasured.
  for (int t = 0; t < tenants; ++t) {
    auto a = selector->Next();
    EASEML_CHECK(a.ok()) << a.status().ToString();
    EASEML_CHECK(selector->Report(*a, Accuracy(a->tenant, a->model)).ok());
  }

  TpCell cell;
  std::vector<MultiTenantSelector::Assignment> batch;
  while (true) {
    batch.clear();
    while (static_cast<int>(batch.size()) < devices) {
      auto a = selector->Next();
      if (!a.ok()) break;  // slots full / everything in flight / exhausted
      batch.push_back(*a);
    }
    if (batch.empty()) break;
    // Worker-CPU snapshot AFTER the Next() burst: the picks' routed
    // SelectArm work must not be charged to the report pipeline.
    // (ShardCpuSeconds drains the queues, so the baseline is quiescent.)
    const std::vector<double> cpu0 = selector->ShardCpuSeconds();
    const double wall0 = WallSeconds();
    const double coord0 = ThreadCpuSeconds();
    for (const auto& a : batch) {
      EASEML_CHECK(selector->Report(a, Accuracy(a.tenant, a.model)).ok());
    }
    const double coord1 = ThreadCpuSeconds();
    const std::vector<double> cpu1 = selector->ShardCpuSeconds();  // drains
    const double wall1 = WallSeconds();
    double max_delta = 0.0;
    for (size_t w = 0; w < cpu1.size(); ++w) {
      max_delta = std::max(max_delta, cpu1[w] - cpu0[w]);
    }
    cell.report_us += max_delta * 1e6;
    cell.coord_us += (coord1 - coord0) * 1e6;
    cell.wall_us += (wall1 - wall0) * 1e6;
    cell.reports += static_cast<int>(batch.size());
  }
  EASEML_CHECK(cell.reports > 0);
  cell.report_us /= cell.reports;
  cell.coord_us /= cell.reports;
  cell.wall_us /= cell.reports;
  return cell;
}

}  // namespace

int main() {
  std::printf(
      "# Next() critical path: scan vs candidate index (GREEDY, K=%d, D=1, "
      "shared prior, %d steady-state steps, thread-CPU clocks)\n",
      kModels, kMeasureSteps);
  std::printf("%8s %7s | %14s %14s | %13s\n", "tenants", "engine",
              "next_us_mean", "report_us_mean", "next_speedup");
  for (int tenants : {1000, 10000, 100000}) {
    Cell scan;
    for (const bool use_index : {false, true}) {
      const Cell cell = RunCampaign(tenants, use_index);
      if (!use_index) scan = cell;
      std::printf("%8d %7s | %14.3f %14.3f | %12.2fx\n", tenants,
                  use_index ? "index" : "scan", cell.next_us, cell.report_us,
                  use_index ? scan.next_us / cell.next_us : 1.0);
      std::printf("NEXT_LATENCY,%d,%s,%.3f,%.3f\n", tenants,
                  use_index ? "index" : "scan", cell.next_us, cell.report_us);
    }
  }

  constexpr int kTpTenants = 240;
  std::printf(
      "\n# Report throughput: shard-parallel fold pipeline (GREEDY+index, "
      "T=%d, K=%d; report_us_mean = max-over-workers thread-CPU critical "
      "path per completion)\n",
      kTpTenants, kModels);
  std::printf("%8s %7s | %14s %13s %12s\n", "devices", "shards",
              "report_us_mean", "coord_us_mean", "wall_us_mean");
  // Two sweeps: shard scaling at D=8 (N=1 is the serialized engine — all
  // folds on one worker), then device scaling at N=8.
  const int kCells[][2] = {{8, 1}, {8, 2}, {8, 4}, {8, 8},
                           {1, 8}, {2, 8}, {4, 8}};
  for (const auto& dn : kCells) {
    const int devices = dn[0];
    const int shards = dn[1];
    const TpCell cell = RunReportThroughput(kTpTenants, devices, shards);
    std::printf("%8d %7d | %14.3f %13.3f %12.3f\n", devices, shards,
                cell.report_us, cell.coord_us, cell.wall_us);
    std::printf("REPORT_TP,%d,%d,%d,%d,%.3f,%.3f,%.3f\n", kTpTenants, devices,
                shards, cell.reports, cell.report_us, cell.coord_us,
                cell.wall_us);
  }
  return 0;
}
