/// Reproduces Figure 8: statistics of the six benchmark datasets, plus the
/// quality/cost distribution summaries shown in the third columns of
/// Figures 10 and 11.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench/bench_util.h"
#include "common/statistics.h"
#include "common/table.h"
#include "data/deeplearning.h"
#include "data/synthetic_generator.h"

namespace {

using easeml::Table;

void RunFigure() {
  easeml::benchutil::PrintFigureHeader("FIG8", "Statistics of Datasets");
  Table table({"dataset", "#users", "#models", "quality", "cost",
               "mean_quality", "std_quality", "mean_cost", "max/min_cost"});
  const auto datasets = easeml::benchutil::AllSixDatasets();
  for (const auto& ds : datasets) {
    std::vector<double> q, c;
    q.reserve(static_cast<size_t>(ds.num_users()) * ds.num_models());
    for (int i = 0; i < ds.num_users(); ++i) {
      for (int j = 0; j < ds.num_models(); ++j) {
        q.push_back(ds.quality(i, j));
        c.push_back(ds.cost(i, j));
      }
    }
    const bool real = ds.name == "DEEPLEARNING";
    const bool real_q = real || ds.name == "179CLASSIFIER";
    table.AddRow({ds.name, std::to_string(ds.num_users()),
                  std::to_string(ds.num_models()),
                  real_q ? "Real*" : "Synthetic",
                  real ? "Real*" : "Synthetic",
                  Table::FormatDouble(easeml::Mean(q), 3),
                  Table::FormatDouble(easeml::StdDev(q), 3),
                  Table::FormatDouble(easeml::Mean(c), 3),
                  Table::FormatDouble(easeml::Max(c) / easeml::Min(c), 1)});
  }
  table.Print(std::cout);
  std::cout << "* calibrated surrogates for the paper's real logs "
               "(see DESIGN.md, substitutions)\n";
}

void BM_GenerateDeepLearning(benchmark::State& state) {
  for (auto _ : state) {
    auto ds =
        easeml::data::GenerateDeepLearning(easeml::data::DeepLearningOptions());
    benchmark::DoNotOptimize(ds);
  }
}
BENCHMARK(BM_GenerateDeepLearning);

void BM_GenerateSyn200x100(benchmark::State& state) {
  for (auto _ : state) {
    easeml::data::SimpleSynOptions opts;
    opts.sigma_m = 0.5;
    opts.alpha = 1.0;
    auto ds = easeml::data::GenerateSimpleSyn(opts);
    benchmark::DoNotOptimize(ds);
  }
}
BENCHMARK(BM_GenerateSyn200x100);

}  // namespace

int main(int argc, char** argv) {
  RunFigure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
