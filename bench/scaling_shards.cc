/// Shard-scaling benchmark for the sharded selector engine (PR 4).
///
/// Sweeps N shards x T tenants over the pure selection hot path: a GREEDY
/// campaign (the scan-heaviest policy — every Next() reads the batched
/// MaxUcb diagnostics of every candidate tenant) driven to exhaustion
/// through the ticketed Next/Report protocol with D=4 devices and one
/// shared GP prior across all tenants. Reported per configuration:
///
///   wall_s        — real end-to-end makespan of the campaign
///   max_shard_cpu — largest per-shard-worker CPU time (thread CPU clocks,
///                   see ShardPool): the scan's critical path. Unlike wall
///                   time it is NOT inflated when the host has fewer cores
///                   than shards, so it measures what an N-core deployment
///                   would see; on a single-core host wall_s stays flat
///                   while this column must still fall monotonically.
///   sum_shard_cpu — total scan work (balance check: ~invariant across N)
///
/// The selection traces themselves are bit-identical across every N (the
/// shard conformance suite pins this), so the sweep measures pure engine
/// mechanics, never a different schedule.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <vector>

#include "common/clock.h"
#include "common/logging.h"
#include "common/rng.h"
#include "core/multi_tenant_selector.h"
#include "gp/shared_prior_gp.h"
#include "linalg/matrix.h"
#include "shard/sharded_selector.h"

namespace {

using easeml::core::MultiTenantSelector;
using easeml::core::SchedulerKind;
using easeml::core::SelectorOptions;
using easeml::shard::ShardedMultiTenantSelector;

constexpr int kModels = 6;
constexpr int kDevices = 4;

/// Deterministic ground-truth accuracy in (0, 1) via an integer hash.
double Accuracy(int tenant, int model) {
  const uint64_t x = easeml::SplitMix64(static_cast<uint64_t>(tenant) *
                                            1000003u +
                                        static_cast<uint64_t>(model));
  return 0.05 + 0.9 * (static_cast<double>(x >> 11) * 0x1.0p-53);
}

struct RunStats {
  int steps = 0;
  double wall_seconds = 0.0;
  double max_shard_cpu = 0.0;
  double sum_shard_cpu = 0.0;
};

RunStats RunCampaign(int tenants, int num_shards) {
  SelectorOptions options;
  options.scheduler = SchedulerKind::kGreedy;
  options.cost_aware = true;
  options.num_devices = kDevices;
  options.num_shards = num_shards;
  // Always the sharded engine (also at N=1) so every row reports the same
  // worker CPU clocks; N=1 is the sequential scan on one worker.
  auto created = ShardedMultiTenantSelector::Create(options);
  EASEML_CHECK(created.ok()) << created.status().ToString();
  ShardedMultiTenantSelector* selector = created->get();

  // One shared prior for every tenant (the multi-tenant memory model).
  auto prior = easeml::gp::MakeSharedGpPrior(
      easeml::linalg::Matrix::Identity(kModels), 1e-2);
  EASEML_CHECK(prior.ok()) << prior.status().ToString();
  for (int t = 0; t < tenants; ++t) {
    std::vector<double> costs;
    for (int m = 0; m < kModels; ++m) {
      costs.push_back(1.0 + 0.25 * ((t + m) % kModels));
    }
    EASEML_CHECK(selector->AddTenant(*prior, costs).ok());
  }

  RunStats stats;
  std::vector<MultiTenantSelector::Assignment> outstanding;
  const double start = easeml::MonotonicSeconds();
  while (true) {
    while (selector->HasDispatchableWork()) {
      auto a = selector->Next();
      EASEML_CHECK(a.ok()) << a.status().ToString();
      outstanding.push_back(*a);
    }
    if (outstanding.empty()) break;
    // FIFO completions: deterministic, and the selector never idles.
    const auto a = outstanding.front();
    outstanding.erase(outstanding.begin());
    EASEML_CHECK(selector->Report(a, Accuracy(a.tenant, a.model)).ok());
    ++stats.steps;
  }
  stats.wall_seconds = easeml::MonotonicSeconds() - start;
  for (double cpu : selector->ShardCpuSeconds()) {
    stats.max_shard_cpu = std::max(stats.max_shard_cpu, cpu);
    stats.sum_shard_cpu += cpu;
  }
  EASEML_CHECK(selector->Exhausted());
  return stats;
}

}  // namespace

int main() {
  std::printf(
      "# Sharded selector engine: N shards x T tenants, GREEDY scan, "
      "K=%d models, D=%d devices, shared prior\n",
      kModels, kDevices);
  std::printf("%8s %7s | %6s | %9s | %14s %14s | %14s\n", "tenants", "shards",
              "steps", "wall_s", "max_shard_cpu", "sum_shard_cpu",
              "scan_speedup");
  for (int tenants : {250, 1000}) {
    double critical_n1 = 0.0;
    for (int shards : {1, 2, 4, 8}) {
      const RunStats r = RunCampaign(tenants, shards);
      if (shards == 1) critical_n1 = r.max_shard_cpu;
      std::printf("%8d %7d | %6d | %9.3f | %14.3f %14.3f | %13.2fx\n",
                  tenants, shards, r.steps, r.wall_seconds, r.max_shard_cpu,
                  r.sum_shard_cpu, critical_n1 / r.max_shard_cpu);
    }
  }
  return 0;
}
