/// Reproduces Figure 14: the impact of the training-set size on the GP
/// kernel. The kernel (and the empirical-Bayes prior mean) is computed from
/// 10% / 50% / 100% of the training users' logs; more logs give a better
/// prior, with diminishing returns between 50% and 100%.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "core/experiment_runner.h"

namespace {

using easeml::core::ProtocolOptions;
using easeml::core::RunProtocol;
using easeml::core::StrategyKind;

ProtocolOptions Options(double fraction) {
  ProtocolOptions opts;
  opts.num_test_users = 10;
  opts.num_reps = easeml::benchutil::BenchReps(50);
  opts.budget_fraction = 0.10;
  opts.cost_aware_budget = true;
  opts.cost_aware_policy = true;
  opts.kernel_train_fraction = fraction;
  opts.seed = 42;
  return opts;
}

void RunFigure() {
  easeml::benchutil::PrintFigureHeader(
      "FIG14", "Impact of training-set size on the GP kernel "
               "(DEEPLEARNING, cost-aware)");
  const auto ds = easeml::benchutil::DeepLearning();
  std::vector<easeml::core::StrategyResult> results;
  for (double fraction : {0.1, 0.5, 1.0}) {
    auto r = RunProtocol(ds, StrategyKind::kEaseMl, Options(fraction));
    EASEML_CHECK(r.ok()) << r.status().ToString();
    r->strategy_name =
        "ease.ml " + std::to_string(static_cast<int>(fraction * 100)) + "%";
    results.push_back(std::move(*r));
  }
  easeml::benchutil::PrintCurvesCsv("FIG14", ds.name, "pct_total_cost",
                                    results);
  easeml::benchutil::PrintSummaryTable(ds.name, results,
                                       {0.10, 0.06, 0.02});
  std::cout << "Expected shape: 100% >= 50% >> 10% (diminishing returns "
               "between 50% and 100%).\n";
}

void BM_KernelFromLogsRep(benchmark::State& state) {
  const auto ds = easeml::benchutil::DeepLearning();
  ProtocolOptions opts = Options(0.5);
  opts.num_reps = 1;
  opts.tune_hyperparameters = false;
  for (auto _ : state) {
    auto r = RunProtocol(ds, StrategyKind::kEaseMl, opts);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_KernelFromLogsRep);

}  // namespace

int main(int argc, char** argv) {
  RunFigure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
