/// Ablation of Section 4.3's "Strategy for Line 8": how GREEDY picks a user
/// from the candidate set. The paper proves the regret bound for any rule
/// but uses the max-UCB-gap rule in production and conjectures that the rule
/// matters in practice; this bench quantifies the three discussed variants.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "core/experiment_runner.h"

namespace {

using easeml::core::ProtocolOptions;
using easeml::core::RunProtocol;
using easeml::core::StrategyKind;
using easeml::scheduler::Line8Rule;

ProtocolOptions Options(Line8Rule rule) {
  ProtocolOptions opts;
  opts.num_test_users = 10;
  opts.num_reps = easeml::benchutil::BenchReps(50);
  opts.budget_fraction = 0.5;
  opts.greedy_rule = rule;
  opts.seed = 42;
  return opts;
}

void RunFigure() {
  easeml::benchutil::PrintFigureHeader(
      "ABLATION-LINE8",
      "Line-8 user-picking rule inside GREEDY (179CLASSIFIER)");
  const auto ds = easeml::benchutil::Classifier179();
  std::vector<easeml::core::StrategyResult> results;
  for (Line8Rule rule : {Line8Rule::kMaxUcbGap, Line8Rule::kMaxEmpiricalBound,
                         Line8Rule::kRandom}) {
    auto r = RunProtocol(ds, StrategyKind::kGreedy, Options(rule));
    EASEML_CHECK(r.ok()) << r.status().ToString();
    r->strategy_name = "greedy/" + easeml::scheduler::Line8RuleName(rule);
    results.push_back(std::move(*r));
  }
  easeml::benchutil::PrintCurvesCsv("ABLATION-LINE8", ds.name, "pct_runs",
                                    results);
  easeml::benchutil::PrintSummaryTable(ds.name, results, {0.05, 0.02});
}

void BM_GreedyMaxGapRep(benchmark::State& state) {
  const auto ds = easeml::benchutil::Classifier179();
  ProtocolOptions opts = Options(Line8Rule::kMaxUcbGap);
  opts.num_reps = 1;
  opts.tune_hyperparameters = false;
  for (auto _ : state) {
    auto r = RunProtocol(ds, StrategyKind::kGreedy, opts);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_GreedyMaxGapRep);

}  // namespace

int main(int argc, char** argv) {
  RunFigure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
