/// Reproduces Figure 15 (lesion study): the impact of hybrid execution.
/// 179CLASSIFIER, cost-oblivious, full run budget: GREEDY leads early,
/// ROUNDROBIN overtakes it late (the GP estimator's modeling error
/// dominates near the optimum), and HYBRID — which switches from GREEDY to
/// ROUNDROBIN when the freeze detector fires — tracks the best of both.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "core/experiment_runner.h"

namespace {

using easeml::core::ProtocolOptions;
using easeml::core::RunStrategies;
using easeml::core::StrategyKind;

ProtocolOptions Options() {
  ProtocolOptions opts;
  opts.num_test_users = 10;
  opts.num_reps = easeml::benchutil::BenchReps(50);
  opts.budget_fraction = 1.0;  // run to the end to expose the crossover
  opts.cost_aware_budget = false;
  opts.cost_aware_policy = false;
  opts.seed = 42;
  return opts;
}

void RunFigure() {
  easeml::benchutil::PrintFigureHeader(
      "FIG15", "Lesion study: hybrid execution on 179CLASSIFIER "
               "(cost-oblivious)");
  const auto ds = easeml::benchutil::Classifier179();
  auto results = RunStrategies(ds,
                               {StrategyKind::kEaseMl,  // = HYBRID
                                StrategyKind::kGreedy,
                                StrategyKind::kRoundRobin},
                               Options());
  EASEML_CHECK(results.ok()) << results.status().ToString();
  (*results)[0].strategy_name = "hybrid (ease.ml)";
  easeml::benchutil::PrintCurvesCsv("FIG15", ds.name, "pct_runs", *results);
  easeml::benchutil::PrintSummaryTable(ds.name, *results,
                                       {0.05, 0.02, 0.01});
  std::cout << "Expected shape: greedy < round-robin early, crossover "
               "late; hybrid best overall (compare avg_loss columns at "
               "small vs large x).\n";
}

void BM_HybridRep179(benchmark::State& state) {
  const auto ds = easeml::benchutil::Classifier179();
  ProtocolOptions opts = Options();
  opts.num_reps = 1;
  opts.budget_fraction = 0.25;
  opts.tune_hyperparameters = false;
  for (auto _ : state) {
    auto r = easeml::core::RunProtocol(ds, StrategyKind::kEaseMl, opts);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_HybridRep179);

}  // namespace

int main(int argc, char** argv) {
  RunFigure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
