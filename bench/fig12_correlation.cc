/// Reproduces Figure 12: the impact of model correlation and
/// model-irrelevant noise. Worst-case accuracy loss on the four
/// SYN(sigma_M, alpha) datasets; moving right increases model correlation
/// (sigma_M 0.01 -> 0.5), moving down increases model-irrelevant noise
/// (alpha 1.0 -> 0.1 dampens the correlated term).
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "common/table.h"
#include "core/experiment_runner.h"
#include "data/synthetic_generator.h"
#include "sim/metrics.h"

namespace {

using easeml::core::ProtocolOptions;
using easeml::core::RunStrategies;
using easeml::core::StrategyKind;

ProtocolOptions Options() {
  ProtocolOptions opts;
  opts.num_test_users = 10;
  opts.num_reps = easeml::benchutil::BenchReps(50);
  opts.budget_fraction = 0.5;
  opts.seed = 42;
  return opts;
}

void RunFigure() {
  easeml::benchutil::PrintFigureHeader(
      "FIG12", "Impact of model correlation and noise (SYN grid, "
               "worst-case loss)");
  easeml::Table table({"dataset", "sigma_M", "alpha", "strategy",
                       "worst_auc", "final_worst_loss"});
  for (double alpha : {1.0, 0.1}) {
    for (double sigma_m : {0.01, 0.5}) {
      easeml::data::SimpleSynOptions gen;
      gen.sigma_m = sigma_m;
      gen.alpha = alpha;
      auto ds = easeml::data::GenerateSimpleSyn(gen);
      EASEML_CHECK(ds.ok()) << ds.status().ToString();
      auto results = RunStrategies(*ds,
                                   {StrategyKind::kEaseMl,
                                    StrategyKind::kRoundRobin,
                                    StrategyKind::kRandom},
                                   Options());
      EASEML_CHECK(results.ok()) << results.status().ToString();
      easeml::benchutil::PrintCurvesCsv("FIG12", ds->name, "pct_runs",
                                        *results);
      for (const auto& r : *results) {
        table.AddRow(
            {ds->name, easeml::Table::FormatDouble(sigma_m, 2),
             easeml::Table::FormatDouble(alpha, 1), r.strategy_name,
             easeml::Table::FormatDouble(
                 easeml::sim::AreaUnderCurve(r.curves.grid, r.curves.worst),
                 5),
             easeml::Table::FormatDouble(r.curves.worst.back(), 5)});
      }
    }
  }
  table.Print(std::cout);
  std::cout << "Expected shape: stronger model correlation (sigma_M up) "
               "and stronger correlated weight (alpha up) speed up all "
               "algorithms, with ease.ml leading.\n";
}

void BM_CorrelatedSynRep(benchmark::State& state) {
  easeml::data::SimpleSynOptions gen;
  gen.sigma_m = 0.5;
  gen.alpha = 1.0;
  auto ds = easeml::data::GenerateSimpleSyn(gen);
  ProtocolOptions opts = Options();
  opts.num_reps = 1;
  opts.tune_hyperparameters = false;
  for (auto _ : state) {
    auto r = easeml::core::RunProtocol(*ds, StrategyKind::kEaseMl, opts);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_CorrelatedSynRep);

}  // namespace

int main(int argc, char** argv) {
  RunFigure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
