/// Tenant-scaling microbenchmark for the belief representations (PR 2).
///
/// Sweeps T tenants x K arms and compares, at the paper's t << K operating
/// point, the dense per-tenant representation (`DiscreteArmGp`: two private
/// K x K matrices, O(K^2) per observation) against the shared-prior one
/// (`SharedPriorGp`: one Gram matrix for all tenants, O(t^2 + tK) per
/// observation). Reports per-(tenant, step) wall time and resident belief
/// bytes per tenant; results are recorded in BENCH_pr2.json.
///
/// The dense fleet is instantiated up to a cap (its per-tenant state is
/// T-independent, so timing and memory extrapolate exactly); the shared
/// fleet is always instantiated in full.
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "common/clock.h"
#include "common/logging.h"
#include "common/rng.h"
#include "gp/gaussian_process.h"
#include "gp/kernel.h"
#include "gp/shared_prior_gp.h"
#include "linalg/matrix.h"

namespace {

using easeml::Rng;
using easeml::gp::DiscreteArmGp;
using easeml::gp::SharedPriorGp;

constexpr int kStepsPerTenant = 5;  // t << K (paper regime: few runs each)
constexpr int kDenseTenantCap = 200;

/// RBF Gram matrix over random 3-d model features, built through the same
/// kernel layer the experiment runner uses.
easeml::linalg::Matrix RandomGram(int k, Rng& rng) {
  std::vector<std::vector<double>> x(k, std::vector<double>(3));
  for (auto& row : x) {
    for (double& v : row) v = rng.Uniform();
  }
  easeml::gp::RbfKernel kernel(/*length_scale=*/0.5, /*signal_variance=*/0.5);
  auto gram = kernel.BuildGram(x);
  EASEML_CHECK(gram.ok()) << gram.status().ToString();
  gram->AddToDiagonal(1e-8);
  return std::move(gram).value();
}

struct RepResult {
  double us_per_step = 0.0;     // mean wall time per (tenant, step)
  double bytes_per_tenant = 0;  // resident belief bytes, amortized
};

/// One observation step: condition on a fresh reward, then refresh the
/// full posterior summary (what GP-UCB's batched SelectArm consumes).
template <typename Belief>
void Step(Belief& belief, int tenant, int step, int k) {
  const int arm = (tenant * 7 + step * 13) % k;
  const double y = 0.3 + 0.4 * (((tenant + 3) * (step + 11)) % 17) / 17.0;
  EASEML_CHECK(belief.Observe(arm, y).ok());
  const auto summary = belief.AllMarginals();
  EASEML_CHECK(static_cast<int>(summary.mean.size()) == k);
}

RepResult RunDense(const easeml::linalg::Matrix& gram, int tenants, int k) {
  const int instantiated = std::min(tenants, kDenseTenantCap);
  std::vector<DiscreteArmGp> fleet;
  fleet.reserve(instantiated);
  for (int i = 0; i < instantiated; ++i) {
    auto gp = DiscreteArmGp::Create(gram, 1e-3);
    EASEML_CHECK(gp.ok());
    fleet.push_back(std::move(gp).value());
  }
  const double start = easeml::MonotonicSeconds();
  for (int s = 0; s < kStepsPerTenant; ++s) {
    for (int i = 0; i < instantiated; ++i) Step(fleet[i], i, s, k);
  }
  const double end = easeml::MonotonicSeconds();
  RepResult out;
  out.us_per_step =
      (end - start) * 1e6 / (static_cast<double>(instantiated) * kStepsPerTenant);
  out.bytes_per_tenant = static_cast<double>(fleet[0].ApproxMemoryBytes());
  return out;
}

RepResult RunShared(const easeml::linalg::Matrix& gram, int tenants, int k) {
  auto prior = easeml::gp::MakeSharedGpPrior(gram, 1e-3);
  EASEML_CHECK(prior.ok());
  std::vector<SharedPriorGp> fleet;
  fleet.reserve(tenants);
  for (int i = 0; i < tenants; ++i) {
    auto gp = SharedPriorGp::Create(*prior);
    EASEML_CHECK(gp.ok());
    fleet.push_back(std::move(gp).value());
  }
  const double start = easeml::MonotonicSeconds();
  for (int s = 0; s < kStepsPerTenant; ++s) {
    for (int i = 0; i < tenants; ++i) Step(fleet[i], i, s, k);
  }
  const double end = easeml::MonotonicSeconds();
  RepResult out;
  out.us_per_step =
      (end - start) * 1e6 / (static_cast<double>(tenants) * kStepsPerTenant);
  double own_bytes = 0.0;
  for (const auto& gp : fleet) {
    own_bytes += static_cast<double>(gp.ApproxMemoryBytes());
  }
  out.bytes_per_tenant = own_bytes / tenants +
                         static_cast<double>((*prior)->ApproxMemoryBytes()) /
                             tenants;
  return out;
}

}  // namespace

int main() {
  std::printf(
      "# Belief-representation scaling: T tenants x K arms, %d "
      "observations per tenant (t << K)\n",
      kStepsPerTenant);
  std::printf("%6s %5s | %18s %18s | %20s %20s | %8s %8s\n", "T", "K",
              "dense us/step", "shared us/step", "dense B/tenant",
              "shared B/tenant", "mem x", "time x");
  for (int k : {8, 179}) {
    Rng rng(42);
    const easeml::linalg::Matrix gram = RandomGram(k, rng);
    for (int tenants : {10, 100, 1000}) {
      const RepResult dense = RunDense(gram, tenants, k);
      const RepResult shared = RunShared(gram, tenants, k);
      std::printf(
          "%6d %5d | %18.3f %18.3f | %20.0f %20.0f | %8.1f %8.2f\n", tenants,
          k, dense.us_per_step, shared.us_per_step, dense.bytes_per_tenant,
          shared.bytes_per_tenant,
          dense.bytes_per_tenant / shared.bytes_per_tenant,
          dense.us_per_step / shared.us_per_step);
    }
  }
  return 0;
}
