/// Ablation of the HYBRID freeze patience s (Section 4.4; the paper fixes
/// s = 10). Small s switches to ROUNDROBIN almost immediately (forfeiting
/// GREEDY's early advantage); huge s never switches (inheriting GREEDY's
/// freezing stage).
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "core/experiment_runner.h"

namespace {

using easeml::core::ProtocolOptions;
using easeml::core::RunProtocol;
using easeml::core::StrategyKind;

ProtocolOptions Options(int patience) {
  ProtocolOptions opts;
  opts.num_test_users = 10;
  opts.num_reps = easeml::benchutil::BenchReps(50);
  opts.budget_fraction = 1.0;  // run long enough for freezing to matter
  opts.hybrid_patience = patience;
  opts.seed = 42;
  return opts;
}

void RunFigure() {
  easeml::benchutil::PrintFigureHeader(
      "ABLATION-PATIENCE", "HYBRID freeze patience s (179CLASSIFIER)");
  const auto ds = easeml::benchutil::Classifier179();
  std::vector<easeml::core::StrategyResult> results;
  for (int patience : {1, 5, 10, 25, 1000000}) {
    auto r = RunProtocol(ds, StrategyKind::kEaseMl, Options(patience));
    EASEML_CHECK(r.ok()) << r.status().ToString();
    r->strategy_name = patience >= 1000000
                           ? "hybrid s=inf (pure greedy)"
                           : "hybrid s=" + std::to_string(patience);
    results.push_back(std::move(*r));
  }
  easeml::benchutil::PrintCurvesCsv("ABLATION-PATIENCE", ds.name,
                                    "pct_runs", results);
  easeml::benchutil::PrintSummaryTable(ds.name, results, {0.02, 0.01});
}

void BM_HybridPatience10Rep(benchmark::State& state) {
  const auto ds = easeml::benchutil::Classifier179();
  ProtocolOptions opts = Options(10);
  opts.num_reps = 1;
  opts.budget_fraction = 0.25;
  opts.tune_hyperparameters = false;
  for (auto _ : state) {
    auto r = RunProtocol(ds, StrategyKind::kEaseMl, opts);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_HybridPatience10Rep);

}  // namespace

int main(int argc, char** argv) {
  RunFigure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
