/// Reproduces Figure 11: the cost-aware multi-tenant case — the realistic
/// scenario ease.ml is designed for. Same lineup as Figure 10 but all
/// algorithms use the cost-aware index and the x-axis/budget is % of total
/// cost.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "core/experiment_runner.h"

namespace {

using easeml::core::ProtocolOptions;
using easeml::core::RunStrategies;
using easeml::core::StrategyKind;

ProtocolOptions Options() {
  ProtocolOptions opts;
  opts.num_test_users = 10;
  opts.num_reps = easeml::benchutil::BenchReps(50);
  opts.budget_fraction = 0.5;
  opts.cost_aware_budget = true;
  opts.cost_aware_policy = true;
  opts.seed = 42;
  return opts;
}

void RunFigure() {
  easeml::benchutil::PrintFigureHeader(
      "FIG11", "Cost-aware multi-tenant model selection (six datasets)");
  for (const auto& ds : easeml::benchutil::AllSixDatasets()) {
    auto results = RunStrategies(ds,
                                 {StrategyKind::kEaseMl,
                                  StrategyKind::kRoundRobin,
                                  StrategyKind::kRandom},
                                 Options());
    EASEML_CHECK(results.ok()) << results.status().ToString();
    easeml::benchutil::PrintCurvesCsv("FIG11", ds.name, "pct_total_cost",
                                      *results);
    easeml::benchutil::PrintSummaryTable(ds.name, *results,
                                         {0.10, 0.05, 0.02});
  }
}

void BM_CostAwareRepDeepLearning(benchmark::State& state) {
  const auto ds = easeml::benchutil::DeepLearning();
  ProtocolOptions opts = Options();
  opts.num_reps = 1;
  opts.tune_hyperparameters = false;
  for (auto _ : state) {
    auto r = easeml::core::RunProtocol(ds, StrategyKind::kEaseMl, opts);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_CostAwareRepDeepLearning);

}  // namespace

int main(int argc, char** argv) {
  RunFigure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
