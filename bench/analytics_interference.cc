/// Analytics/serving interference: does a continuous full-fleet scan
/// through the snapshot plane perturb the Next()/Report() hot path?
///
/// The point of src/obs is that an analytics reader never touches the
/// selector lock: shard workers publish immutable copy-on-write summary
/// blocks at fold boundaries, and a scan walks the last published blocks.
/// This bench quantifies both halves of that claim at T up to 1e5 tenants
/// (GREEDY + candidate index, num_shards = 1, the serving configuration
/// next_latency sweeps):
///
///   arm "off"       observer unset — the PR8 baseline serving path.
///   arm "obs"       FleetObserver attached (snapshot plane + full metric
///                   registry), nobody reading — the cost of publication.
///   arm "obs+scan"  same, plus a scanner thread looping full-fleet
///                   Snapshot() walks for the whole measured window.
///
/// The acceptance gate compares "obs" vs "obs+scan": a continuous scan must
/// not SLOW next_us_mean / report_us_mean by 5% or more (scripts/bench.sh
/// computes the deltas). The gate is one-sided because the scan arm often
/// runs slightly faster: a scanner holding a snapshot keeps the previous
/// blocks alive across a publish, so their destruction migrates off the
/// publishing driver thread onto the scanner — an offload, not
/// interference. Timing is the single-core bench protocol — per-call
/// CLOCK_THREAD_CPUTIME_ID on the driving thread, which charges the driver
/// nothing for scanner CPU, so the gate measures interference (cache
/// pressure, publication-side contention), not core sharing.
///
/// Machine-readable rows for scripts/bench.sh:
///   ANALYTICS_IF,<tenants>,<arm>,<next_us_mean>,<report_us_mean>,<scans>,<scan_ms_mean>,<fleet_epoch>
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/logging.h"
#include "common/rng.h"
#include "core/multi_tenant_selector.h"
#include "gp/shared_prior_gp.h"
#include "linalg/matrix.h"
#include "obs/fleet_observer.h"
#include "obs/metrics.h"
#include "obs/snapshot.h"
#include "shard/sharded_selector.h"

namespace {

using easeml::MonotonicSeconds;
using easeml::ThreadCpuSeconds;
using easeml::core::MultiTenantSelector;
using easeml::core::SchedulerKind;
using easeml::core::SelectorOptions;

constexpr int kModels = 6;
// Longer windows than next_latency's 200, and kReps interleaved measurement
// windows per arm (off, obs, obs+scan, off, obs, ...): the <5%
// obs-vs-obs+scan gate needs per-call means stable against scheduler jitter
// and slow frequency/thermal drift on the one-core container — interleaving
// spreads the drift evenly across the arms instead of biasing whichever ran
// last. Each arm's campaign is built ONCE and all its windows run on that
// live selector (every arm advances the same number of steps per rep, so
// belief states stay step-for-step comparable); rebuilding the 1e5-tenant
// fleet per rep would spend ~98% of the runtime on setup and starve the
// median of reps. Two further robustness layers, both standard for sub-10µs
// gates on a shared vCPU: within a rep the per-call mean drops the top
// kTrimPercent of samples (preemption and cache-refill spikes land on
// whichever call resumes first, uncorrelated with the arm), and across reps
// the reported value is the MEDIAN of the per-rep means, so one descheduled
// rep cannot drag an arm past the gate.
constexpr int kMeasureSteps = 5000;  // per window; capped at T/kReps in main
constexpr int kReps = 9;
constexpr int kTrimPercent = 2;
// Scanner cadence: one full-fleet walk every 5ms — 200 scans/s, orders of
// magnitude beyond any dashboard refresh (easeml_top defaults to 500ms),
// yet still a *paced* reader. A hot-spinning scanner on this one-core
// container would measure core sharing (preemption + cache refill charged
// to whichever call resumes first), not plane interference; pacing keeps
// the bench about the design claim — readers share no lock with serving.
// At the gated T=1e5 the measured window spans many scan periods (5000
// calls at a few µs each ≈ 7+ full scan cycles per rep), so each rep's
// mean is a steady-state average over the scanner's duty cycle, not a
// lucky or unlucky phase of it.
constexpr int kScanPeriodMs = 5;

/// Deterministic ground-truth accuracy in (0, 1) via an integer hash.
double Accuracy(int tenant, int model) {
  const uint64_t x = easeml::SplitMix64(static_cast<uint64_t>(tenant) *
                                            1000003u +
                                        static_cast<uint64_t>(model));
  return 0.05 + 0.9 * (static_cast<double>(x >> 11) * 0x1.0p-53);
}

/// Mean of `samples` after dropping the top kTrimPercent (in place sort).
double TrimmedMean(std::vector<double>* samples) {
  std::sort(samples->begin(), samples->end());
  const size_t keep =
      samples->size() - samples->size() * kTrimPercent / 100;
  double sum = 0.0;
  for (size_t i = 0; i < keep; ++i) sum += (*samples)[i];
  return keep == 0 ? 0.0 : sum / static_cast<double>(keep);
}

/// Median of the per-rep values in `v` (in place sort).
double Median(std::vector<double>* v) {
  std::sort(v->begin(), v->end());
  const size_t n = v->size();
  if (n == 0) return 0.0;
  return n % 2 == 1 ? (*v)[n / 2] : 0.5 * ((*v)[n / 2 - 1] + (*v)[n / 2]);
}

enum class Arm { kOff, kObs, kObsScan };

const char* ArmName(Arm arm) {
  switch (arm) {
    case Arm::kOff:
      return "off";
    case Arm::kObs:
      return "obs";
    case Arm::kObsScan:
      return "obs+scan";
  }
  return "?";
}

struct Cell {
  double next_us = 0.0;     // mean driver thread-CPU microseconds per Next()
  double report_us = 0.0;   // ... per Report()
  int64_t scans = 0;        // full-fleet walks completed during the window
  double scan_ms = 0.0;     // mean scanner thread-CPU milliseconds per walk
  uint64_t fleet_epoch = 0; // final published epoch (0 for arm "off")
};

/// Full-fleet walk: touch every published observation (sum a few fields so
/// the reads cannot be optimized away) and return the walked entry count.
int64_t ScanOnce(const easeml::obs::SnapshotPlane& plane, double* sink) {
  const easeml::obs::FleetSnapshot snap = plane.Snapshot();
  int64_t walked = 0;
  double acc = 0.0;
  snap.ForEachTenant(
      [&walked, &acc](int shard, const easeml::core::TenantObservation& o) {
        (void)shard;
        ++walked;
        acc += o.best_reward + static_cast<double>(o.rounds_served);
      });
  *sink += acc;
  return walked;
}

/// One arm's long-lived campaign state: the selector (with its observer for
/// the obs arms) is built and initialization-swept once, then every
/// measurement rep runs a window on it.
struct ArmState {
  Arm arm = Arm::kOff;
  std::unique_ptr<easeml::obs::Registry> registry;
  std::unique_ptr<easeml::obs::FleetObserver> observer;
  std::unique_ptr<MultiTenantSelector> selector;
};

ArmState MakeArm(int tenants, Arm arm) {
  ArmState state;
  state.arm = arm;
  SelectorOptions options;
  options.scheduler = SchedulerKind::kGreedy;
  options.cost_aware = true;
  options.num_devices = 1;
  options.num_shards = 1;  // the serving configuration next_latency sweeps
  options.use_candidate_index = true;

  if (arm != Arm::kOff) {
    state.registry = std::make_unique<easeml::obs::Registry>();
    easeml::obs::FleetObserverOptions obs_options;
    obs_options.num_shards = 1;
    obs_options.registry = state.registry.get();
    state.observer = std::make_unique<easeml::obs::FleetObserver>(obs_options);
    options.observer = state.observer.get();
  }
  auto created = easeml::shard::MakeSelector(options);
  EASEML_CHECK(created.ok()) << created.status().ToString();
  state.selector = std::move(*created);

  auto prior = easeml::gp::MakeSharedGpPrior(
      easeml::linalg::Matrix::Identity(kModels), 1e-2);
  EASEML_CHECK(prior.ok()) << prior.status().ToString();
  for (int t = 0; t < tenants; ++t) {
    std::vector<double> costs;
    for (int m = 0; m < kModels; ++m) {
      costs.push_back(1.0 + 0.25 * ((t + m) % kModels));
    }
    EASEML_CHECK(state.selector->AddTenant(*prior, costs).ok());
  }
  // Initialization sweep (unmeasured): serve every tenant once so the
  // measured windows run in the regular GREEDY regime.
  for (int t = 0; t < tenants; ++t) {
    auto a = state.selector->Next();
    EASEML_CHECK(a.ok()) << a.status().ToString();
    EASEML_CHECK(
        state.selector->Report(*a, Accuracy(a->tenant, a->model)).ok());
  }
  return state;
}

/// One measured window of `steps` Next+Report pairs on an arm's live
/// campaign. The scanner (obs+scan arm only) covers the whole window:
/// started before the first timed step, stopped after the last.
Cell MeasureWindow(ArmState& state, int steps) {
  MultiTenantSelector* selector = state.selector.get();
  std::atomic<bool> stop{false};
  std::atomic<int64_t> scans{0};
  std::atomic<int64_t> walked_total{0};
  double scan_cpu_seconds = 0.0;
  std::thread scanner;
  if (state.arm == Arm::kObsScan) {
    easeml::obs::SnapshotPlane* plane = &state.observer->plane();
    scanner = std::thread([&, plane] {
      double sink = 0.0;
      const double c0 = ThreadCpuSeconds();
      while (!stop.load(std::memory_order_relaxed)) {
        walked_total.fetch_add(ScanOnce(*plane, &sink),
                               std::memory_order_relaxed);
        scans.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::sleep_for(std::chrono::milliseconds(kScanPeriodMs));
      }
      scan_cpu_seconds = ThreadCpuSeconds() - c0;
      // Keep the accumulated sink observable so the walk reads survive -O2.
      if (sink == 0.25) std::fprintf(stderr, "sink %f\n", sink);
    });
  }

  std::vector<double> next_samples, report_samples;
  next_samples.reserve(static_cast<size_t>(steps));
  report_samples.reserve(static_cast<size_t>(steps));
  for (int step = 0; step < steps; ++step) {
    const double t0 = ThreadCpuSeconds();
    auto a = selector->Next();
    const double t1 = ThreadCpuSeconds();
    EASEML_CHECK(a.ok()) << a.status().ToString();
    EASEML_CHECK(selector->Report(*a, Accuracy(a->tenant, a->model)).ok());
    const double t2 = ThreadCpuSeconds();
    next_samples.push_back((t1 - t0) * 1e6);
    report_samples.push_back((t2 - t1) * 1e6);
  }
  Cell cell;
  cell.next_us = TrimmedMean(&next_samples);
  cell.report_us = TrimmedMean(&report_samples);

  if (state.arm == Arm::kObsScan) {
    stop.store(true, std::memory_order_relaxed);
    scanner.join();
    cell.scans = scans.load(std::memory_order_relaxed);
    cell.scan_ms =
        cell.scans == 0 ? 0.0 : scan_cpu_seconds * 1e3 / cell.scans;
  }
  return cell;
}

}  // namespace

int main() {
  std::printf("analytics_interference: full-fleet snapshot scans vs the "
              "serving hot path (GREEDY + index, 1 shard, %d measured "
              "steps)\n\n",
              kMeasureSteps);
  std::printf("%8s %9s %12s %14s %8s %12s %12s\n", "tenants", "arm",
              "next_us_mean", "report_us_mean", "scans", "scan_ms_mean",
              "fleet_epoch");
  constexpr Arm kArms[] = {Arm::kOff, Arm::kObs, Arm::kObsScan};
  for (int tenants : {10000, 100000}) {
    ArmState arms[3];
    for (int i = 0; i < 3; ++i) arms[i] = MakeArm(tenants, kArms[i]);
    // Cap the TOTAL measured steps per arm at one extra round per tenant:
    // GREEDY's per-Next cost is regime-dependent, and driving a small fleet
    // several rounds past the init sweep leaves the early-serving regime
    // next_latency sweeps (at T=1e4, Next climbs two orders of magnitude
    // once tenants pass ~2.5 rounds — a deep-campaign engine behavior, not
    // what this bench compares arms over).
    const int steps = std::min(kMeasureSteps, tenants / kReps);
    Cell total[3];
    std::vector<double> next_reps[3], report_reps[3];
    for (int rep = 0; rep < kReps; ++rep) {
      for (int i = 0; i < 3; ++i) {
        const Cell cell = MeasureWindow(arms[i], steps);
        next_reps[i].push_back(cell.next_us);
        report_reps[i].push_back(cell.report_us);
        total[i].scans += cell.scans;
        total[i].scan_ms += cell.scan_ms / kReps;
      }
    }
    for (int i = 0; i < 3; ++i) {
      if (arms[i].observer != nullptr) {
        // Engine idle (base engine at N=1 folds inline): flush publishes
        // every remaining event.
        arms[i].observer->plane().FlushAll();
        total[i].fleet_epoch = arms[i].observer->plane().Snapshot().epoch();
      }
    }
    for (int i = 0; i < 3; ++i) {
      Cell& cell = total[i];
      cell.next_us = Median(&next_reps[i]);
      cell.report_us = Median(&report_reps[i]);
      std::printf("%8d %9s %12.3f %14.3f %8lld %12.3f %12llu\n", tenants,
                  ArmName(kArms[i]), cell.next_us, cell.report_us,
                  static_cast<long long>(cell.scans), cell.scan_ms,
                  static_cast<unsigned long long>(cell.fleet_epoch));
      std::printf("ANALYTICS_IF,%d,%s,%.3f,%.3f,%lld,%.3f,%llu\n", tenants,
                  ArmName(kArms[i]), cell.next_us, cell.report_us,
                  static_cast<long long>(cell.scans), cell.scan_ms,
                  static_cast<unsigned long long>(cell.fleet_epoch));
    }
  }
  return 0;
}
