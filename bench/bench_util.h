#ifndef EASEML_BENCH_BENCH_UTIL_H_
#define EASEML_BENCH_BENCH_UTIL_H_

#include <string>
#include <vector>

#include "core/experiment_runner.h"
#include "data/dataset.h"

namespace easeml::benchutil {

/// The six benchmark datasets of Figure 8, at paper-scale sizes.
std::vector<data::Dataset> AllSixDatasets();

/// The DEEPLEARNING surrogate alone (used by Figures 9, 13, 14).
data::Dataset DeepLearning();

/// The 179CLASSIFIER surrogate alone (used by Figure 15).
data::Dataset Classifier179();

/// Number of experiment repetitions: EASEML_BENCH_REPS env override, else
/// `fallback` (the paper uses 50).
int BenchReps(int fallback = 50);

/// Prints a banner identifying the reproduced figure.
void PrintFigureHeader(const std::string& figure_id,
                       const std::string& title);

/// Prints the figure's series as CSV rows
///   figure,dataset,x_label,x,series,metric,value
/// with metric in {avg_loss, worst_loss} — the two columns the paper plots.
void PrintCurvesCsv(const std::string& figure_id, const std::string& dataset,
                    const std::string& x_label,
                    const std::vector<core::StrategyResult>& results);

/// Prints a per-strategy summary table (final losses and AUC) plus the
/// speedup of the first strategy over each other strategy in reaching each
/// target loss (the paper's headline "N.Nx faster" metric). Targets a
/// strategy never reaches print as "n/a".
void PrintSummaryTable(const std::string& dataset,
                       const std::vector<core::StrategyResult>& results,
                       const std::vector<double>& target_losses);

}  // namespace easeml::benchutil

#endif  // EASEML_BENCH_BENCH_UTIL_H_
