/// EXTENSION (paper Section 4.5): the paper's analysis covers GP-UCB only
/// and leaves GP-EI / GP-PI integration open. This bench compares the four
/// model-picking policies (GP-UCB, GP-EI, GP-PI, GP-Thompson) under
/// identical ROUNDROBIN user scheduling on a strongly correlated synthetic
/// workload, using the raw simulator API.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bandit/gp_acquisitions.h"
#include "bandit/gp_ucb.h"
#include "bench/bench_util.h"
#include "common/logging.h"
#include "common/table.h"
#include "data/model_features.h"
#include "data/splits.h"
#include "data/synthetic_generator.h"
#include "gp/kernel.h"
#include "scheduler/round_robin.h"
#include "sim/simulator.h"

namespace {

using easeml::Rng;
using easeml::Table;

enum class Policy { kUcb, kEi, kPi, kThompson };

const char* PolicyName(Policy p) {
  switch (p) {
    case Policy::kUcb: return "gp-ucb";
    case Policy::kEi: return "gp-ei";
    case Policy::kPi: return "gp-pi";
    case Policy::kThompson: return "gp-thompson";
  }
  return "?";
}

std::unique_ptr<easeml::bandit::BanditPolicy> MakePolicy(
    Policy kind, easeml::gp::DiscreteArmGp belief,
    const std::vector<double>& costs, uint64_t seed) {
  easeml::bandit::GpAcquisitionOptions acq;
  acq.cost_aware = true;
  acq.costs = costs;
  switch (kind) {
    case Policy::kUcb: {
      easeml::bandit::GpUcbOptions ucb;
      ucb.cost_aware = true;
      ucb.costs = costs;
      auto p = easeml::bandit::GpUcbPolicy::CreateUnique(std::move(belief),
                                                         ucb);
      EASEML_CHECK(p.ok());
      return std::move(p).value();
    }
    case Policy::kEi: {
      auto p = easeml::bandit::GpEiPolicy::Create(std::move(belief), acq);
      EASEML_CHECK(p.ok());
      return std::make_unique<easeml::bandit::GpEiPolicy>(
          std::move(p).value());
    }
    case Policy::kPi: {
      auto p = easeml::bandit::GpPiPolicy::Create(std::move(belief), acq);
      EASEML_CHECK(p.ok());
      return std::make_unique<easeml::bandit::GpPiPolicy>(
          std::move(p).value());
    }
    case Policy::kThompson: {
      auto p = easeml::bandit::GpThompsonPolicy::Create(std::move(belief),
                                                        acq, seed);
      EASEML_CHECK(p.ok());
      return std::make_unique<easeml::bandit::GpThompsonPolicy>(
          std::move(p).value());
    }
  }
  return nullptr;
}

/// One repetition: returns the loss curve under the given policy kind.
easeml::sim::LossCurve RunRep(const easeml::data::Dataset& ds, Policy kind,
                              uint64_t seed) {
  Rng rng(seed);
  auto split = easeml::data::SplitUsers(ds.num_users(), 10, rng);
  EASEML_CHECK(split.ok());
  auto features = easeml::data::ComputeModelFeatures(ds, split->train_users);
  EASEML_CHECK(features.ok());
  auto global_mean =
      easeml::data::ComputeGlobalMeanQuality(ds, split->train_users);
  EASEML_CHECK(global_mean.ok());
  // Fixed moderate kernel (the comparison is between acquisitions, not
  // hyperparameter fits).
  easeml::gp::RbfKernel kernel(0.2, 0.05);
  // Scale features by 1/sqrt(dim) as the protocol runner does.
  for (auto& f : *features) {
    for (double& v : f) v /= std::sqrt(static_cast<double>(f.size()));
  }
  auto gram = kernel.BuildGram(*features);
  EASEML_CHECK(gram.ok());
  gram->AddToDiagonal(1e-8);

  auto test_ds = ds.SelectUsers(split->test_users);
  EASEML_CHECK(test_ds.ok());
  auto env = easeml::sim::Environment::Create(std::move(*test_ds));
  EASEML_CHECK(env.ok());

  std::vector<easeml::scheduler::UserState> users;
  for (int i = 0; i < env->num_users(); ++i) {
    auto belief = easeml::gp::DiscreteArmGp::Create(
        *gram, 1e-3,
        std::vector<double>(ds.num_models(), *global_mean));
    EASEML_CHECK(belief.ok());
    auto state = easeml::scheduler::UserState::Create(
        i,
        MakePolicy(kind, std::move(belief).value(), env->CostsForUser(i),
                   rng.NextSeed()),
        env->CostsForUser(i));
    EASEML_CHECK(state.ok());
    users.push_back(std::move(state).value());
  }
  easeml::scheduler::RoundRobinScheduler rr;
  easeml::sim::SimulationOptions opts;
  opts.cost_aware_budget = true;
  opts.budget_fraction = 0.5;
  auto result = easeml::sim::RunSimulation(*env, users, rr, opts);
  EASEML_CHECK(result.ok());
  return std::move(result->curve);
}

void RunFigure() {
  easeml::benchutil::PrintFigureHeader(
      "EXT-ACQ", "Model-picking acquisition functions under ROUNDROBIN "
                 "(SYN(0.5,1.0), cost-aware)");
  easeml::data::SimpleSynOptions gen;
  gen.sigma_m = 0.5;
  gen.alpha = 1.0;
  auto ds = easeml::data::GenerateSimpleSyn(gen);
  EASEML_CHECK(ds.ok());
  const int reps = easeml::benchutil::BenchReps(30);
  Table table({"policy", "mean_auc", "final_avg_loss"});
  for (Policy kind :
       {Policy::kUcb, Policy::kEi, Policy::kPi, Policy::kThompson}) {
    std::vector<easeml::sim::LossCurve> curves;
    for (int r = 0; r < reps; ++r) {
      curves.push_back(RunRep(*ds, kind, 1000 + r));
    }
    auto agg = easeml::sim::Aggregate(curves);
    EASEML_CHECK(agg.ok());
    table.AddRow({PolicyName(kind),
                  Table::FormatDouble(
                      easeml::sim::AreaUnderCurve(agg->grid, agg->mean), 5),
                  Table::FormatDouble(agg->mean.back(), 5)});
  }
  table.Print(std::cout);
}

void BM_GpEiRep(benchmark::State& state) {
  easeml::data::SimpleSynOptions gen;
  gen.sigma_m = 0.5;
  gen.alpha = 1.0;
  gen.num_users = 60;
  gen.num_models = 30;
  auto ds = easeml::data::GenerateSimpleSyn(gen);
  for (auto _ : state) {
    auto curve = RunRep(*ds, Policy::kEi, 7);
    benchmark::DoNotOptimize(curve);
  }
}
BENCHMARK(BM_GpEiRep);

}  // namespace

int main(int argc, char** argv) {
  RunFigure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
