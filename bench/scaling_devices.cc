/// Device-scaling benchmark for the async multi-device selection pipeline
/// (PR 3). Sweeps D devices x T tenants on the full service stack
/// (DSL submission -> task pool -> multi-tenant selector -> async worker
/// pool): each training run is dilated in real time by its simulated
/// duration, so the reported wall-clock makespan is the end-to-end time a
/// D-device cluster would take to exhaust the campaign. With a shared FIFO
/// of independent tenants the makespan must fall monotonically from D=1 to
/// D=8 (recorded in BENCH_pr3.json).
#include <chrono>
#include <cstdio>

#include "common/logging.h"
#include "platform/service.h"

namespace {

using easeml::platform::AsyncRunReport;
using easeml::platform::EaseMlService;

constexpr char kImageProgram[] =
    "{input: {[Tensor[256,256,3]], []}, output: {[Tensor[3]], []}}";

/// Real seconds slept per unit of simulated GPU time. Training one
/// candidate costs roughly relative_cost * 400 simulated units, so a
/// 100-tenant x 8-candidate campaign sums to a few seconds at D=1.
constexpr double kSecondsPerCostUnit = 5e-6;

AsyncRunReport RunCampaign(int tenants, int devices) {
  EaseMlService::Options opts;
  opts.seed = 42;
  opts.selector.seed = 42;
  opts.selector.num_devices = devices;
  auto service = EaseMlService::Create(opts);
  EASEML_CHECK(service.ok()) << service.status().ToString();
  for (int j = 0; j < tenants; ++j) {
    auto job = service->SubmitJob(kImageProgram);
    EASEML_CHECK(job.ok()) << job.status().ToString();
    EASEML_CHECK(service->Feed(j, 100 + (j * 37) % 400).ok());
  }
  auto report = service->RunAsync(devices, kSecondsPerCostUnit);
  EASEML_CHECK(report.ok()) << report.status().ToString();
  EASEML_CHECK(service->Exhausted());
  return *report;
}

}  // namespace

int main() {
  std::printf(
      "# Async multi-device selection: D devices x T tenants, full service "
      "stack, %g real s per simulated cost unit\n",
      kSecondsPerCostUnit);
  std::printf("%8s %8s | %6s | %12s %12s | %14s %14s\n", "tenants", "devices",
              "steps", "wall_s", "speedup", "sim_busy", "sim_makespan");
  for (int tenants : {25, 100}) {
    double wall_d1 = 0.0;
    for (int devices : {1, 2, 4, 8}) {
      const AsyncRunReport r = RunCampaign(tenants, devices);
      if (devices == 1) wall_d1 = r.wall_seconds;
      std::printf("%8d %8d | %6d | %12.3f %12.2f | %14.1f %14.1f\n", tenants,
                  devices, r.steps, r.wall_seconds,
                  wall_d1 / r.wall_seconds, r.simulated_busy_time,
                  r.simulated_makespan);
    }
  }
  return 0;
}
