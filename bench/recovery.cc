/// Durability bench: what the write-ahead log costs on the serving hot
/// path, and what recovery costs at restart.
///
/// Section 1 (RECOVERY_SERVE) drives identical GREEDY+index campaigns
/// through four engines — WAL off; WAL in group-commit mode ("wal":
/// kDeferred, acks return from the process buffer, the file sees one
/// write per 64 KiB threshold crossing); WAL with a write() per ack
/// ("wal+write": kBuffered, survives process crash); and WAL with an
/// fsync per ack ("wal+fsync") — and reports per-call Next()/Report()
/// thread-CPU means, same protocol as bench/next_latency (per-call
/// CLOCK_THREAD_CPUTIME_ID on the driving thread, N=1). The group-commit
/// arm is the <10% Report-overhead hard gate in scripts/bench.sh: it
/// measures what the LOG costs the hot path (encode + memcpy + amortized
/// flush); the per-ack-syscall arms measure the kernel and the disk, and
/// are informational (fsync runs only at the small fleet size). All arms
/// of a fleet size run as simultaneous live campaigns with their
/// measurement windows interleaved round-robin, and each arm's mean is
/// the median over its 9 windows — host drift lands on every arm
/// equally instead of biasing whichever campaign ran later.
///
/// Section 2 (RECOVERY_TIME) measures restart cost against log length:
/// build a campaign of L Next/Report pairs, kill it, and time
/// wal::OpenOrRecover twice — once replaying the whole log, once after a
/// checkpoint was cut at the end (restore + scan, zero records replayed).
/// Recovery replays Reports through the engine's public API, so the
/// no-checkpoint arm pays the same belief folds the original campaign
/// paid; the checkpoint arm pays a state decode linear in the fleet.
///
/// Machine-readable rows for scripts/bench.sh:
///   RECOVERY_SERVE,<tenants>,<arm>,<next_us_mean>,<report_us_mean>
///   RECOVERY_TIME,<ops>,<tenants>,<checkpoint 0/1>,<recover_ms>,<replayed_records>,<log_bytes>
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "common/logging.h"
#include "common/rng.h"
#include "core/multi_tenant_selector.h"
#include "gp/shared_prior_gp.h"
#include "linalg/matrix.h"
#include "shard/sharded_selector.h"
#include "wal/checkpoint.h"
#include "wal/file.h"
#include "wal/recovery.h"
#include "wal/selector_wal.h"

namespace {

using easeml::core::MultiTenantSelector;
using easeml::core::SchedulerKind;
using easeml::core::SelectorOptions;
using easeml::wal::SelectorWalOptions;

constexpr int kModels = 6;
constexpr int kWindowSteps = 200;
constexpr int kWindows = 15;

const char kBenchDir[] = "/tmp/easeml_recovery_bench";

using easeml::ThreadCpuSeconds;

/// Deterministic ground-truth accuracy in (0, 1) via an integer hash
/// (same generator as bench/next_latency).
double Accuracy(int tenant, int model) {
  const uint64_t x = easeml::SplitMix64(static_cast<uint64_t>(tenant) *
                                            1000003u +
                                        static_cast<uint64_t>(model));
  return 0.05 + 0.9 * (static_cast<double>(x >> 11) * 0x1.0p-53);
}

SelectorOptions ServeOptions() {
  SelectorOptions options;
  options.scheduler = SchedulerKind::kGreedy;
  options.cost_aware = true;
  options.num_devices = 1;
  options.num_shards = 1;
  options.use_candidate_index = true;
  return options;
}

void AddFleet(MultiTenantSelector* selector, int tenants) {
  auto prior = easeml::gp::MakeSharedGpPrior(
      easeml::linalg::Matrix::Identity(kModels), 1e-2);
  EASEML_CHECK(prior.ok()) << prior.status().ToString();
  for (int t = 0; t < tenants; ++t) {
    std::vector<double> costs;
    for (int m = 0; m < kModels; ++m) {
      costs.push_back(1.0 + 0.25 * ((t + m) % kModels));
    }
    EASEML_CHECK(selector->AddTenant(*prior, costs).ok());
  }
}

/// Wipes the bench directory's log/checkpoint so each cell starts fresh.
void WipeDir(easeml::wal::FileSystem* fs) {
  EASEML_CHECK(fs->CreateDir(kBenchDir).ok());
  (void)fs->Delete(easeml::wal::LogPath(kBenchDir));
  (void)fs->Delete(easeml::wal::CheckpointPath(kBenchDir));
}

struct Cell {
  double next_us = 0.0;
  double report_us = 0.0;
};

enum class WalArm { kOff, kDeferred, kBuffered, kFsync };

const char* ArmName(WalArm arm) {
  switch (arm) {
    case WalArm::kOff:
      return "off";
    case WalArm::kDeferred:
      return "wal";
    case WalArm::kBuffered:
      return "wal+write";
    case WalArm::kFsync:
      return "wal+fsync";
  }
  return "?";
}

SelectorWalOptions::Durability ArmDurability(WalArm arm) {
  switch (arm) {
    case WalArm::kBuffered:
      return SelectorWalOptions::Durability::kBuffered;
    case WalArm::kFsync:
      return SelectorWalOptions::Durability::kFsync;
    default:
      return SelectorWalOptions::Durability::kDeferred;
  }
}

/// One live campaign per arm; measurement windows are interleaved
/// round-robin across the arms so host drift (frequency steps, cache
/// pressure from neighbors) lands on every arm equally — the same
/// protocol bench/analytics_interference uses. The WAL deltas under test
/// (an encode + memcpy per call) are far below the drift between two
/// back-to-back whole campaigns.
struct ServeArm {
  WalArm kind;
  std::string dir;
  std::unique_ptr<easeml::wal::SelectorWal> wal;
  std::unique_ptr<MultiTenantSelector> selector;
  std::vector<double> next_means;
  std::vector<double> report_means;
};

std::vector<Cell> RunServeCampaigns(int tenants,
                                    const std::vector<WalArm>& arms) {
  easeml::wal::FileSystem* fs = easeml::wal::GetPosixFileSystem();
  std::vector<ServeArm> live;
  for (size_t i = 0; i < arms.size(); ++i) {
    ServeArm arm;
    arm.kind = arms[i];
    arm.dir = std::string(kBenchDir) + "/arm" + std::to_string(i);
    EASEML_CHECK(fs->CreateDir(arm.dir).ok());
    (void)fs->Delete(easeml::wal::LogPath(arm.dir));
    (void)fs->Delete(easeml::wal::CheckpointPath(arm.dir));
    SelectorOptions options = ServeOptions();
    if (arm.kind != WalArm::kOff) {
      SelectorWalOptions wal_options;
      wal_options.durability = ArmDurability(arm.kind);
      auto opened = easeml::wal::SelectorWal::Open(
          fs, easeml::wal::LogPath(arm.dir), wal_options);
      EASEML_CHECK(opened.ok()) << opened.status().ToString();
      arm.wal = std::move(*opened);
      options.wal = arm.wal.get();
    }
    auto created = easeml::shard::MakeSelector(options);
    EASEML_CHECK(created.ok()) << created.status().ToString();
    arm.selector = std::move(*created);
    AddFleet(arm.selector.get(), tenants);
    // Initialization sweep (unmeasured): serve every tenant once so the
    // measured windows run in the regular GREEDY regime.
    for (int t = 0; t < tenants; ++t) {
      auto a = arm.selector->Next();
      EASEML_CHECK(a.ok()) << a.status().ToString();
      EASEML_CHECK(
          arm.selector->Report(*a, Accuracy(a->tenant, a->model)).ok());
    }
    live.push_back(std::move(arm));
  }

  for (int w = 0; w < kWindows; ++w) {
    for (ServeArm& arm : live) {
      double next_us = 0.0, report_us = 0.0;
      for (int step = 0; step < kWindowSteps; ++step) {
        const double t0 = ThreadCpuSeconds();
        auto a = arm.selector->Next();
        const double t1 = ThreadCpuSeconds();
        EASEML_CHECK(a.ok()) << a.status().ToString();
        EASEML_CHECK(
            arm.selector->Report(*a, Accuracy(a->tenant, a->model)).ok());
        const double t2 = ThreadCpuSeconds();
        next_us += (t1 - t0) * 1e6;
        report_us += (t2 - t1) * 1e6;
      }
      arm.next_means.push_back(next_us / kWindowSteps);
      arm.report_means.push_back(report_us / kWindowSteps);
    }
  }

  std::vector<Cell> cells;
  for (size_t i = 0; i < live.size(); ++i) {
    ServeArm& arm = live[i];
    // Raw per-window means (comment row): the estimator's input, kept in
    // the log so a surprising median can be diagnosed from the artifact.
    std::printf("# windows arm%zu=%s report:", i, ArmName(arm.kind));
    for (const double r : arm.report_means) std::printf(" %.3f", r);
    std::printf(" next:");
    for (const double n : arm.next_means) std::printf(" %.3f", n);
    std::printf("\n");
    std::sort(arm.next_means.begin(), arm.next_means.end());
    std::sort(arm.report_means.begin(), arm.report_means.end());
    // Lower-quartile window, not median: host contamination (kernel
    // writeback, neighbor bursts) is periodic and strictly additive — the
    // window dump above shows clean windows tightly clustered with every
    // ~3rd window inflated 2x — so a low quantile reads the clean-window
    // (intrinsic) cost for every arm alike while the median can land on a
    // contaminated window.
    Cell cell;
    cell.next_us = arm.next_means[kWindows / 4];
    cell.report_us = arm.report_means[kWindows / 4];
    cells.push_back(cell);
  }
  return cells;
}

struct RecoverCell {
  double recover_ms = 0.0;
  int64_t replayed_records = 0;
  int64_t log_bytes = 0;
};

RecoverCell TimeRecovery(easeml::wal::FileSystem* fs,
                         const SelectorOptions& options) {
  const double wall0 = easeml::MonotonicSeconds();
  auto recovered = easeml::wal::OpenOrRecover(fs, kBenchDir, options);
  const double wall1 = easeml::MonotonicSeconds();
  EASEML_CHECK(recovered.ok()) << recovered.status().ToString();
  RecoverCell cell;
  cell.recover_ms = (wall1 - wall0) * 1e3;
  cell.replayed_records = recovered->stats.replayed_records;
  cell.log_bytes = recovered->stats.log_bytes;
  return cell;
}

void RunRecoverySweep() {
  easeml::wal::FileSystem* fs = easeml::wal::GetPosixFileSystem();
  std::printf(
      "\n# Recovery time vs log length (GREEDY+index, K=%d, buffered WAL; "
      "recover_ms is wall time of wal::OpenOrRecover)\n",
      kModels);
  std::printf("%8s %8s %11s | %12s %17s %11s\n", "ops", "tenants",
              "checkpoint", "recover_ms", "replayed_records", "log_bytes");
  for (const int ops : {1000, 4000, 16000}) {
    // Fleet sized so the campaign never exhausts: ops/4 tenants hold
    // 1.5*ops arm plays.
    const int tenants = std::max(50, ops / 4);
    WipeDir(fs);
    SelectorOptions options = ServeOptions();
    {
      SelectorWalOptions wal_options;
      wal_options.durability = SelectorWalOptions::Durability::kBuffered;
      auto opened = easeml::wal::SelectorWal::Open(
          fs, easeml::wal::LogPath(kBenchDir), wal_options);
      EASEML_CHECK(opened.ok()) << opened.status().ToString();
      SelectorOptions wired = options;
      wired.wal = opened->get();
      auto created = easeml::shard::MakeSelector(wired);
      EASEML_CHECK(created.ok()) << created.status().ToString();
      MultiTenantSelector* selector = created->get();
      AddFleet(selector, tenants);
      for (int step = 0; step < ops; ++step) {
        auto a = selector->Next();
        EASEML_CHECK(a.ok()) << a.status().ToString();
        EASEML_CHECK(
            selector->Report(*a, Accuracy(a->tenant, a->model)).ok());
      }
      // Engine and WAL destroyed here: the last Report's Sync already
      // wrote every record, so this is a clean process kill.
    }
    for (const bool with_checkpoint : {false, true}) {
      if (with_checkpoint) {
        // Cut the checkpoint through a recovered engine, then kill again.
        auto recovered = easeml::wal::OpenOrRecover(fs, kBenchDir, options);
        EASEML_CHECK(recovered.ok()) << recovered.status().ToString();
        EASEML_CHECK(easeml::wal::CutCheckpoint(fs, kBenchDir,
                                                recovered->wal.get(),
                                                *recovered->selector, nullptr)
                         .ok());
      }
      const RecoverCell cell = TimeRecovery(fs, options);
      std::printf("%8d %8d %11d | %12.2f %17lld %11lld\n", ops, tenants,
                  with_checkpoint ? 1 : 0, cell.recover_ms,
                  static_cast<long long>(cell.replayed_records),
                  static_cast<long long>(cell.log_bytes));
      std::printf("RECOVERY_TIME,%d,%d,%d,%.2f,%lld,%lld\n", ops, tenants,
                  with_checkpoint ? 1 : 0, cell.recover_ms,
                  static_cast<long long>(cell.replayed_records),
                  static_cast<long long>(cell.log_bytes));
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  // --gate-only: just the T=1e5 serve campaigns the bench.sh gate reads —
  // the quick-turnaround mode for CI smoke legs and repeatability checks.
  const bool gate_only =
      argc > 1 && std::string_view(argv[1]) == "--gate-only";
  std::printf(
      "# WAL serving overhead: Next()/Report() per-call thread-CPU means "
      "(GREEDY+index, K=%d, D=1, N=1; median over %d interleaved windows "
      "of %d steps, one live campaign per arm). "
      "The group-commit arm is the <10%% Report gate; fsync is "
      "informational and runs only at the small fleet.\n",
      kModels, kWindows, kWindowSteps);
  std::printf("%8s %10s | %14s %14s\n", "tenants", "arm", "next_us_mean",
              "report_us_mean");
  for (const int tenants : {1000, 10000, 100000}) {
    if (gate_only && tenants != 100000) continue;
    // The gate fleet duplicates the off and group-commit arms: the WAL's
    // small structures (a 2.5 KiB slot array, a 64 KiB buffer) are subject
    // to per-allocation cache-set luck that can elevate one arm for a
    // whole run (interleaved windows cancel drift, not layout), so the
    // gate statistic is the MINIMUM delta over the off x wal pairs — the
    // intrinsic cost — and the off-vs-off spread is printed as the run's
    // noise floor.
    std::vector<WalArm> arms;
    if (tenants == 100000) {
      arms = {WalArm::kOff, WalArm::kDeferred, WalArm::kOff,
              WalArm::kDeferred};
      if (!gate_only) arms.push_back(WalArm::kBuffered);
    } else {
      arms = {WalArm::kOff, WalArm::kDeferred, WalArm::kBuffered};
      if (tenants <= 1000) arms.push_back(WalArm::kFsync);
    }
    const std::vector<Cell> cells = RunServeCampaigns(tenants, arms);
    bool seen_off = false, seen_wal = false;
    for (size_t i = 0; i < arms.size(); ++i) {
      // Duplicate arms print once (first instance); all feed the gate row.
      const bool dup = (arms[i] == WalArm::kOff && seen_off) ||
                       (arms[i] == WalArm::kDeferred && seen_wal);
      seen_off = seen_off || arms[i] == WalArm::kOff;
      seen_wal = seen_wal || arms[i] == WalArm::kDeferred;
      if (dup) continue;
      std::printf("%8d %10s | %14.3f %14.3f\n", tenants, ArmName(arms[i]),
                  cells[i].next_us, cells[i].report_us);
      std::printf("RECOVERY_SERVE,%d,%s,%.3f,%.3f\n", tenants,
                  ArmName(arms[i]), cells[i].next_us, cells[i].report_us);
    }
    if (tenants == 100000) {
      std::vector<double> off_reports, wal_reports;
      for (size_t i = 0; i < arms.size(); ++i) {
        if (arms[i] == WalArm::kOff) off_reports.push_back(cells[i].report_us);
        if (arms[i] == WalArm::kDeferred) {
          wal_reports.push_back(cells[i].report_us);
        }
      }
      // Gate statistic: average the duplicate arms (halving
      // per-allocation layout luck), then the relative report delta.
      double off_avg = 0.0, wal_avg = 0.0;
      for (const double off : off_reports) off_avg += off;
      for (const double wal : wal_reports) wal_avg += wal;
      off_avg /= static_cast<double>(off_reports.size());
      wal_avg /= static_cast<double>(wal_reports.size());
      const double delta_pct = 100.0 * (wal_avg - off_avg) / off_avg;
      const double off_spread_pct =
          100.0 *
          (*std::max_element(off_reports.begin(), off_reports.end()) -
           *std::min_element(off_reports.begin(), off_reports.end())) /
          *std::min_element(off_reports.begin(), off_reports.end());
      std::printf(
          "# gate: report delta of avg-of-%zu wal arms vs avg-of-%zu off "
          "arms %+.2f%%; off-vs-off spread (noise floor) %.2f%%\n",
          wal_reports.size(), off_reports.size(), delta_pct, off_spread_pct);
      std::printf("RECOVERY_GATE,%d,%.2f,%.2f\n", tenants, delta_pct,
                  off_spread_pct);
    }
  }
  if (!gate_only) RunRecoverySweep();
  return 0;
}
