#!/usr/bin/env bash
# Tier-1 verify loop (same commands as .github/workflows/ci.yml and
# ROADMAP.md): configure, build, run every registered test.
#
# Usage: scripts/tier1.sh [CONFIG]
#   CONFIG is a CMake build type (default RelWithDebInfo, the historical
#   tier-1 loop; pass Release to exercise the -O2 leg) or one of the
#   sanitizer presets:
#     asan  — ASan+UBSan   (-DEASEML_SANITIZE=address,undefined)
#     tsan  — ThreadSanitizer (-DEASEML_SANITIZE=thread), which races the
#             async training executor, the multi-device pipeline, and the
#             sharded selector engine (the shard conformance suite plus the
#             concurrent Next/Report/Cancel/RemoveTenant churn battery in
#             tests/shard/ run under every preset via ctest)
#     lint  — static-analysis leg: builds tools/easeml_lint and runs it
#             over src/ (determinism & lock-discipline rules), then — when
#             the pinned Clang major (or any newer clang) is installed —
#             rebuilds the tree with -Wthread-safety -Wthread-safety-beta
#             promoted to errors, and runs clang-tidy over src/ with the
#             committed .clang-tidy. The Clang stages skip with a notice
#             when no clang is on PATH (the stock container is GCC-only);
#             CI installs the pinned major so they always run there.
#   Non-default configs use their own build directory (build-<config>) so
#   the configurations never clobber each other.
set -euo pipefail
cd "$(dirname "$0")/.."

# The Clang major the -Wthread-safety and clang-tidy stages are pinned to
# (the version CI installs); any clang >= this also works locally.
EASEML_CLANG_MAJOR="${EASEML_CLANG_MAJOR:-18}"

CONFIG="${1:-RelWithDebInfo}"
BUILD_DIR="build"
CMAKE_ARGS=()

if [[ "${CONFIG}" == "lint" ]]; then
  BUILD_DIR="build-lint"

  echo "== easeml_lint: determinism & lock-discipline rules over src/"
  cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=Release \
        -DEASEML_BUILD_TESTS=OFF -DEASEML_BUILD_BENCH=OFF \
        -DEASEML_BUILD_EXAMPLES=OFF
  cmake --build "${BUILD_DIR}" -j --target easeml_lint
  "${BUILD_DIR}/tools/easeml_lint" src/

  # Locate the pinned clang (clang-18 first, then a new-enough plain clang).
  CLANG_CXX=""
  if command -v "clang++-${EASEML_CLANG_MAJOR}" >/dev/null 2>&1; then
    CLANG_CXX="clang++-${EASEML_CLANG_MAJOR}"
  elif command -v clang++ >/dev/null 2>&1; then
    FOUND_MAJOR="$(clang++ -dumpversion | cut -d. -f1)"
    if [[ "${FOUND_MAJOR}" -ge "${EASEML_CLANG_MAJOR}" ]]; then
      CLANG_CXX="clang++"
    fi
  fi

  if [[ -n "${CLANG_CXX}" ]]; then
    echo "== clang thread-safety analysis (-Wthread-safety*, as errors)"
    cmake -B build-tsa -S . -DCMAKE_BUILD_TYPE=Release \
          -DCMAKE_CXX_COMPILER="${CLANG_CXX}" \
          -DEASEML_BUILD_BENCH=OFF -DEASEML_BUILD_EXAMPLES=OFF
    cmake --build build-tsa -j
  else
    echo "NOTICE: clang++-${EASEML_CLANG_MAJOR} (or newer) not found;" \
         "skipping the -Wthread-safety build. The annotations compile to" \
         "no-ops under GCC; CI runs this stage with the pinned clang."
  fi

  TIDY_BIN=""
  if command -v "clang-tidy-${EASEML_CLANG_MAJOR}" >/dev/null 2>&1; then
    TIDY_BIN="clang-tidy-${EASEML_CLANG_MAJOR}"
  elif command -v clang-tidy >/dev/null 2>&1; then
    TIDY_BIN="clang-tidy"
  fi
  if [[ -n "${TIDY_BIN}" && -n "${CLANG_CXX}" ]]; then
    echo "== clang-tidy over src/ (.clang-tidy config)"
    find src -name '*.cc' -print0 | sort -z | \
      xargs -0 "${TIDY_BIN}" -p build-tsa --warnings-as-errors='*'
  else
    echo "NOTICE: clang-tidy-${EASEML_CLANG_MAJOR} not found; skipping" \
         "the tidy stage (CI runs it with the pinned clang)."
  fi
  exit 0
fi

case "${CONFIG}" in
  asan)
    BUILD_DIR="build-asan"
    CMAKE_ARGS=(-DCMAKE_BUILD_TYPE=RelWithDebInfo
                -DEASEML_SANITIZE=address,undefined)
    ;;
  tsan)
    BUILD_DIR="build-tsan"
    CMAKE_ARGS=(-DCMAKE_BUILD_TYPE=RelWithDebInfo
                -DEASEML_SANITIZE=thread)
    ;;
  *)
    if [[ "${CONFIG}" != "RelWithDebInfo" ]]; then
      BUILD_DIR="build-$(echo "${CONFIG}" | tr '[:upper:]' '[:lower:]')"
    fi
    CMAKE_ARGS=(-DCMAKE_BUILD_TYPE="${CONFIG}")
    ;;
esac

cmake -B "${BUILD_DIR}" -S . "${CMAKE_ARGS[@]}"
cmake --build "${BUILD_DIR}" -j
cd "${BUILD_DIR}" && ctest --output-on-failure -j

# Figure-9 digit parity gate: a perf PR must leave the end-to-end ease.ml
# trajectory untouched — every printed digit of the fig09 summary table has
# to match BENCH_baseline.json exactly. The protocol is deterministic
# (seeded, no wall-clock dependence); only the google-benchmark timing
# section varies run to run, and the filter skips it. EASEML_BENCH_REPS is
# unset so an inherited speed-up override can never change the measured
# digits (the baseline is the 50-rep protocol).
echo "== fig09 digit parity vs BENCH_baseline.json"
env -u EASEML_BENCH_REPS ./bench/fig09_end_to_end --benchmark_filter='^$' \
  > fig09_parity.out
python3 - fig09_parity.out ../BENCH_baseline.json <<'PYEOF'
import json, re, sys
table = {}
for line in open(sys.argv[1]):
    m = re.match(r'\|\s*\S+\s*\|\s*(\S+)\s*\|\s*([0-9.]+)\s*\|'
                 r'\s*([0-9.]+)\s*\|\s*([0-9.]+)\s*\|', line)
    if m:
        table[m.group(1)] = (m.group(2), m.group(3), m.group(4))
base = json.load(open(sys.argv[2]))['figure9_summary']['strategies']
failures = []
for entry in base:
    want = tuple('%.5f' % entry[k]
                 for k in ('final_avg_loss', 'final_worst_loss', 'auc'))
    got = table.get(entry['strategy'])
    if got != want:
        failures.append((entry['strategy'], want, got))
if not table:
    failures.append(('<no fig09 table parsed>', None, None))
for name, want, got in failures:
    print('fig09 PARITY FAILURE:', name, 'expected', want, 'got', got)
if failures:
    sys.exit(1)
print('fig09 digits match BENCH_baseline.json for %d strategies' % len(base))
PYEOF
