#!/usr/bin/env bash
# Tier-1 verify loop (same commands as .github/workflows/ci.yml and
# ROADMAP.md): configure, build, run every registered test.
#
# Usage: scripts/tier1.sh [BUILD_TYPE]
#   BUILD_TYPE defaults to RelWithDebInfo (the historical tier-1 loop).
#   Pass Release to exercise the -O2 leg CI runs on every PR; non-default
#   build types use their own build directory (build-<type>) so the two
#   configurations never clobber each other.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_TYPE="${1:-RelWithDebInfo}"
BUILD_DIR="build"
if [[ "${BUILD_TYPE}" != "RelWithDebInfo" ]]; then
  BUILD_DIR="build-$(echo "${BUILD_TYPE}" | tr '[:upper:]' '[:lower:]')"
fi

cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE="${BUILD_TYPE}"
cmake --build "${BUILD_DIR}" -j
cd "${BUILD_DIR}" && ctest --output-on-failure -j
