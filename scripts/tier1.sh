#!/usr/bin/env bash
# Tier-1 verify loop (same commands as .github/workflows/ci.yml and
# ROADMAP.md): configure, build, run every registered test.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j
cd build && ctest --output-on-failure -j
