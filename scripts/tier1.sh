#!/usr/bin/env bash
# Tier-1 verify loop (same commands as .github/workflows/ci.yml and
# ROADMAP.md): configure, build, run every registered test.
#
# Usage: scripts/tier1.sh [CONFIG]
#   CONFIG is a CMake build type (default RelWithDebInfo, the historical
#   tier-1 loop; pass Release to exercise the -O2 leg) or one of the
#   sanitizer presets:
#     asan  — ASan+UBSan   (-DEASEML_SANITIZE=address,undefined)
#     tsan  — ThreadSanitizer (-DEASEML_SANITIZE=thread), which races the
#             async training executor, the multi-device pipeline, and the
#             sharded selector engine (the shard conformance suite plus the
#             concurrent Next/Report/Cancel/RemoveTenant churn battery in
#             tests/shard/ run under every preset via ctest)
#   Non-default configs use their own build directory (build-<config>) so
#   the configurations never clobber each other.
set -euo pipefail
cd "$(dirname "$0")/.."

CONFIG="${1:-RelWithDebInfo}"
BUILD_DIR="build"
CMAKE_ARGS=()
case "${CONFIG}" in
  asan)
    BUILD_DIR="build-asan"
    CMAKE_ARGS=(-DCMAKE_BUILD_TYPE=RelWithDebInfo
                -DEASEML_SANITIZE=address,undefined)
    ;;
  tsan)
    BUILD_DIR="build-tsan"
    CMAKE_ARGS=(-DCMAKE_BUILD_TYPE=RelWithDebInfo
                -DEASEML_SANITIZE=thread)
    ;;
  *)
    if [[ "${CONFIG}" != "RelWithDebInfo" ]]; then
      BUILD_DIR="build-$(echo "${CONFIG}" | tr '[:upper:]' '[:lower:]')"
    fi
    CMAKE_ARGS=(-DCMAKE_BUILD_TYPE="${CONFIG}")
    ;;
esac

cmake -B "${BUILD_DIR}" -S . "${CMAKE_ARGS[@]}"
cmake --build "${BUILD_DIR}" -j
cd "${BUILD_DIR}" && ctest --output-on-failure -j
