#!/usr/bin/env bash
# Uniform perf-bench runner: executes the selector-scaling benchmarks —
#   bench/scaling_tenants        (T x K sweep of the shared-prior engine)
#   bench/scaling_shards         (N shards x T tenants scan critical path)
#   bench/next_latency           (per-Next() cost: O(T) scan vs candidate
#                                 index. Also emits the REPORT_TP rows:
#                                 the shard-parallel report-throughput
#                                 sweep — one row per (devices, shards)
#                                 cell with the per-completion fold
#                                 critical path, coordinator-phase cost,
#                                 and wall time; parsed into the JSON's
#                                 report_throughput section.)
#   bench/analytics_interference (obs-plane interference: Next/Report
#                                 means with the observer off, on, and on
#                                 with a continuous full-fleet snapshot
#                                 scanner; the T=1e5 obs-vs-obs+scan
#                                 deltas are a hard gate: the scan must
#                                 not slow either mean by >= 5%. One-sided
#                                 because the scan arm is often slightly
#                                 FASTER — scan-held snapshots absorb
#                                 retired-block destruction the publishing
#                                 thread would otherwise pay.)
#   bench/recovery               (durability: WAL-off vs group-commit vs
#                                 per-ack-write serving cost, and recovery
#                                 time vs log length with and without a
#                                 checkpoint. The T=1e5 RECOVERY_GATE row
#                                 is a hard gate: the group-commit WAL must
#                                 not slow report_us_mean by >= 10%.)
# — sequentially (single-core container: never bench while a build runs),
# captures each binary's stdout under bench-logs/, and emits a machine
# written BENCH json (default BENCH_pr10.json) with the parsed tables.
#
# Failure discipline: a bench binary that exits nonzero (or an output that
# no longer parses, or a failed interference/durability gate) aborts the
# script with a nonzero exit, and the output JSON is written atomically via
# a temp file — a failed run can never leave a partial or stale-looking
# BENCH_*.json for CI to archive. The prior-PR baseline comparison is the
# one soft stage: a fresh clone with no earlier BENCH_pr*.json gets a
# NOTICE and a skip, never a failure.
#
# Usage: scripts/bench.sh [OUTPUT_JSON] [BUILD_DIR]
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_pr10.json}"
BUILD_DIR="${2:-build}"

BENCHES=(scaling_tenants scaling_shards next_latency analytics_interference
         recovery)

for bench in "${BENCHES[@]}"; do
  if [[ ! -x "${BUILD_DIR}/bench/${bench}" ]]; then
    echo "error: ${BUILD_DIR}/bench/${bench} not built (run tier1.sh first)" >&2
    exit 1
  fi
done

mkdir -p bench-logs
for bench in "${BENCHES[@]}"; do
  echo "== ${bench}"
  # Remove the previous log first: if this binary fails, the parser below
  # must not be able to pick up a stale complete-looking log on a rerun.
  rm -f "bench-logs/${bench}.txt"
  if ! "./${BUILD_DIR}/bench/${bench}" | tee "bench-logs/${bench}.txt"; then
    echo "error: bench/${bench} failed; not writing ${OUT}" >&2
    exit 1
  fi
done

python3 - "${OUT}" "${BUILD_DIR}" <<'PYEOF'
import json, re, subprocess, sys, datetime, os

out_path = sys.argv[1]
build_dir = sys.argv[2]

def cmake_build_type():
    try:
        with open(os.path.join(build_dir, 'CMakeCache.txt')) as f:
            for line in f:
                if line.startswith('CMAKE_BUILD_TYPE:'):
                    return line.strip().split('=', 1)[1] or 'unknown'
    except OSError:
        pass
    return 'unknown'

def read(name):
    with open(os.path.join('bench-logs', name + '.txt')) as f:
        return f.read()

def table_rows(text):
    """Numeric rows of the whitespace/pipe tables the sweeps print."""
    rows = []
    for line in text.splitlines():
        if line.startswith('#') or not line.strip():
            continue
        cells = [c for c in re.split(r'[|\s]+', line.strip()) if c]
        try:
            rows.append([float(c.rstrip('x')) for c in cells])
        except ValueError:
            continue  # header line
    return rows

next_latency = read('next_latency')
rows = []
for line in next_latency.splitlines():
    if line.startswith('NEXT_LATENCY,'):
        _, tenants, engine, next_us, report_us = line.split(',')
        rows.append([int(tenants), engine, float(next_us), float(report_us)])
speedups = {}
for t in sorted({r[0] for r in rows}):
    scan = next(r for r in rows if r[0] == t and r[1] == 'scan')
    index = next(r for r in rows if r[0] == t and r[1] == 'index')
    speedups[str(t)] = round(scan[2] / index[2], 2)

tp_rows = []
for line in next_latency.splitlines():
    if line.startswith('REPORT_TP,'):
        _, tenants, devices, shards, reports, rep_us, coord_us, wall_us = \
            line.split(',')
        tp_rows.append([int(tenants), int(devices), int(shards), int(reports),
                        float(rep_us), float(coord_us), float(wall_us)])

def tp_cell(devices, shards):
    return next(r for r in tp_rows if r[1] == devices and r[2] == shards)

# Observability-plane interference: ANALYTICS_IF,<tenants>,<arm>,
# <next_us_mean>,<report_us_mean>,<scans>,<scan_ms_mean>,<fleet_epoch>.
if_rows = []
for line in read('analytics_interference').splitlines():
    if line.startswith('ANALYTICS_IF,'):
        _, tenants, arm, next_us, report_us, scans, scan_ms, epoch = \
            line.split(',')
        if_rows.append([int(tenants), arm, float(next_us), float(report_us),
                        int(scans), float(scan_ms), int(epoch)])

def if_cell(tenants, arm):
    return next(r for r in if_rows if r[0] == tenants and r[1] == arm)

def scan_delta_pct(tenants, col):
    """obs+scan vs obs relative change, percent, for column index `col`."""
    base = if_cell(tenants, 'obs')[col]
    scan = if_cell(tenants, 'obs+scan')[col]
    return round(100.0 * (scan - base) / base, 2)

if_deltas = {
    str(t): {'next_us_pct': scan_delta_pct(t, 2),
             'report_us_pct': scan_delta_pct(t, 3)}
    for t in sorted({r[0] for r in if_rows})
}

# Hard acceptance gate: at T=1e5 a continuous full-fleet scan must not
# SLOW either serving mean by >= 5% vs the scan-free observer arm.
# One-sided on purpose: the scan arm frequently runs slightly faster,
# because a scanner holding a snapshot keeps the previous blocks alive
# across a publish and their destruction migrates off the publishing
# driver thread onto the scanner — an offload, not interference.
GATE_TENANTS, GATE_PCT = 100000, 5.0
gate = if_deltas[str(GATE_TENANTS)]
gate_failures = [
    '{} slowdown {:+.2f}% exceeds {:.0f}% at T={}'.format(k, v, GATE_PCT,
                                                          GATE_TENANTS)
    for k, v in gate.items() if v >= GATE_PCT
]
if gate_failures:
    for msg in gate_failures:
        print('interference gate FAILED:', msg, file=sys.stderr)
    sys.exit(1)

# Durability bench: RECOVERY_SERVE,<tenants>,<arm>,<next_us>,<report_us>;
# RECOVERY_GATE,<tenants>,<report_delta_pct>,<off_spread_pct>;
# RECOVERY_TIME,<ops>,<tenants>,<ckpt 0/1>,<recover_ms>,<replayed>,<bytes>.
recovery_text = read('recovery')
rec_serve_rows = []
rec_time_rows = []
rec_gate_row = None
for line in recovery_text.splitlines():
    if line.startswith('RECOVERY_SERVE,'):
        _, tenants, arm, next_us, report_us = line.split(',')
        rec_serve_rows.append([int(tenants), arm, float(next_us),
                               float(report_us)])
    elif line.startswith('RECOVERY_TIME,'):
        _, ops, tenants, ckpt, ms, replayed, nbytes = line.split(',')
        rec_time_rows.append([int(ops), int(tenants), int(ckpt), float(ms),
                              int(replayed), int(nbytes)])
    elif line.startswith('RECOVERY_GATE,'):
        _, tenants, delta, spread = line.split(',')
        rec_gate_row = {'tenants': int(tenants),
                        'report_delta_pct': float(delta),
                        'off_spread_pct': float(spread)}

# Hard acceptance gate: the group-commit WAL ("wal" arm) must not slow the
# T=1e5 Report mean by >= 10% vs the WAL-off engine. The bench emits the
# delta itself (avg over duplicated arms of lower-quartile window means, so
# per-allocation layout luck and periodic host contamination are both
# controlled); the script only enforces it.
WAL_GATE_PCT = 10.0
if rec_gate_row is None:
    print('durability gate FAILED: bench/recovery emitted no RECOVERY_GATE '
          'row', file=sys.stderr)
    sys.exit(1)
if rec_gate_row['report_delta_pct'] >= WAL_GATE_PCT:
    print('durability gate FAILED: WAL-on report_us_mean regressed '
          '{:+.2f}% (>= {:.0f}%) at T={}'.format(
              rec_gate_row['report_delta_pct'], WAL_GATE_PCT,
              rec_gate_row['tenants']), file=sys.stderr)
    sys.exit(1)

def rec_time_cell(ops, ckpt):
    return next(r for r in rec_time_rows if r[0] == ops and r[2] == ckpt)

def compiler():
    try:
        return subprocess.run(['g++', '--version'], capture_output=True,
                              text=True).stdout.splitlines()[0]
    except OSError:
        return 'unknown'

doc = {
    'benchmark': 'scripts/bench.sh: bench/scaling_tenants + '
                 'bench/scaling_shards + bench/next_latency + '
                 'bench/analytics_interference + bench/recovery',
    'description':
        'PR 10: durable selector (crash-safe WAL + checkpoints + recovery '
        'replay). bench/recovery measures what durability costs the '
        'serving hot path — WAL off vs group-commit (kDeferred: acks are a '
        'slot push into a process buffer, encode+CRC batch at the drain, '
        'the file sees one write per 64 KiB) vs a write() per ack '
        '(kBuffered) vs an fsync per ack — and what recovery costs at '
        'restart (full-log replay vs checkpoint + empty suffix). '
        'Prior-PR context: next_latency drives identical '
        'GREEDY campaigns (bit-identical traces, pinned by the index/scan '
        'conformance suite) through the scan engine and the index-backed '
        'engine, timing Next() and Report() separately with '
        'CLOCK_THREAD_CPUTIME_ID on the driving thread (thread-CPU clocks '
        'are not inflated by host oversubscription; this container has one '
        'core). The index answers Next() from per-shard tournament roots '
        'and pays an O(log T) leaf replay per Report instead of an O(T K) '
        'rescan per Next. The report_throughput section measures the PR 8 '
        'shard-parallel report pipeline: Report validates the ticket under '
        'the coordinator lock and queues the O(t^2) belief fold on the '
        'tenant\'s owning shard worker, so a burst of D completions folds '
        'concurrently across N shards; report_us_mean is the per-completion '
        'fold critical path (max over workers of the thread-CPU delta).',
    'recorded': datetime.date.today().isoformat(),
    'command': './' + ' && ./'.join(
        build_dir + '/bench/' + b
        for b in ('scaling_tenants', 'scaling_shards', 'next_latency',
                  'analytics_interference', 'recovery')),
    'environment': {
        'compiler': compiler(),
        'cmake_build_type': cmake_build_type(),
        'num_cpus': os.cpu_count(),
    },
    'next_latency': {
        'scheduler': 'greedy',
        'models_per_tenant': 6,
        'devices': 1,
        'steady_state_steps': 200,
        'columns': ['tenants', 'engine', 'next_us_mean', 'report_us_mean'],
        'rows': rows,
        'next_speedup_index_vs_scan': speedups,
        'headline':
            'Per-Next() critical path with the candidate index grows '
            'sub-linearly in T ({} us at T=1e3 -> {} us at T=1e5) while the '
            'scan path grows linearly; at T=100k GREEDY the index serves '
            'Next() {}x faster than the scan, and its Report-side leaf '
            'refresh stays cheaper than the scan engine\'s report path.'
            .format(
                next(r[2] for r in rows if r[0] == 1000 and r[1] == 'index'),
                next(r[2] for r in rows if r[0] == 100000 and r[1] == 'index'),
                speedups.get('100000')),
    },
    'report_throughput': {
        'scheduler': 'greedy',
        'use_candidate_index': True,
        'tenants': 240,
        'models_per_tenant': 6,
        'columns': ['tenants', 'devices', 'shards', 'reports',
                    'report_us_mean', 'coord_us_mean', 'wall_us_mean'],
        'rows': tp_rows,
        'fold_critical_path_speedup_n8_vs_n1_at_d8':
            round(tp_cell(8, 1)[4] / tp_cell(8, 8)[4], 2),
        'headline':
            'Shard-parallel report pipeline: with all 8 device slots '
            'completing in bursts, the per-completion fold critical path '
            '(max-over-shard-workers thread CPU) falls from {} us on the '
            'serialized engine (N=1: every fold on one worker) to {} us at '
            'N=8 — {}x — while the coordinator phase (ticket validation + '
            'enqueue) stays a constant-time sliver of the old under-lock '
            'fold.'.format(
                tp_cell(8, 1)[4], tp_cell(8, 8)[4],
                round(tp_cell(8, 1)[4] / tp_cell(8, 8)[4], 2)),
    },
    'recovery_durability': {
        'scheduler': 'greedy',
        'use_candidate_index': True,
        'models_per_tenant': 6,
        'estimator': 'lower-quartile over 15 interleaved windows of 200 '
                     'steps (one live campaign per arm; duplicate off/wal '
                     'arms at the gate fleet averaged to control '
                     'per-allocation layout luck)',
        'arms': {'off': 'no WAL', 'wal': 'group-commit (kDeferred)',
                 'wal+write': 'write() per ack (kBuffered)',
                 'wal+fsync': 'fsync per ack (kFsync, small fleet only)'},
        'serve_columns': ['tenants', 'arm', 'next_us_mean',
                          'report_us_mean'],
        'serve_rows': rec_serve_rows,
        'recovery_time_columns': ['ops', 'tenants', 'checkpoint',
                                  'recover_ms', 'replayed_records',
                                  'log_bytes'],
        'recovery_time_rows': rec_time_rows,
        'gate': {'tenants': rec_gate_row['tenants'],
                 'max_report_slowdown_pct': WAL_GATE_PCT,
                 'report_delta_pct': rec_gate_row['report_delta_pct'],
                 'off_vs_off_spread_pct': rec_gate_row['off_spread_pct'],
                 'passed': True},
        'headline':
            'Durability for {:+.2f}% on the T=1e5 Report mean (gate <10%): '
            'a group-commit WAL ack is one spin-locked slot push, with '
            'encode+CRC batched at the 64-slot drain and one write() per '
            '64 KiB. Restart replay of a {}-record log costs {:.0f} ms; '
            'a checkpoint cuts that to {:.0f} ms ({}x).'.format(
                rec_gate_row['report_delta_pct'],
                rec_time_cell(16000, 0)[4],
                rec_time_cell(16000, 0)[3],
                rec_time_cell(16000, 1)[3],
                round(rec_time_cell(16000, 0)[3] /
                      max(rec_time_cell(16000, 1)[3], 1e-9))),
    },
    'scaling_tenants': {'raw_rows': table_rows(read('scaling_tenants'))},
    'scaling_shards': {'raw_rows': table_rows(read('scaling_shards'))},
    'analytics_interference': {
        'scheduler': 'greedy',
        'use_candidate_index': True,
        'models_per_tenant': 6,
        'measured_steps_per_window': 'min(5000, T/9)',
        'reps': 9,
        'estimator': 'median over 9 interleaved windows (one live campaign '
                     'per arm) of per-call trimmed means (top 2% dropped)',
        'scan_period_ms': 5,
        'columns': ['tenants', 'arm', 'next_us_mean', 'report_us_mean',
                    'scans', 'scan_ms_mean', 'fleet_epoch'],
        'rows': if_rows,
        'scan_vs_noscan_delta_pct': if_deltas,
        'gate': {'tenants': GATE_TENANTS, 'max_slowdown_pct': GATE_PCT,
                 'one_sided': 'scan-held snapshots absorb retired-block '
                              'destruction, so small speedups are expected',
                 'passed': True},
        'headline':
            'Snapshot-isolated observability: a continuous full-fleet '
            'snapshot scan (every {} ms) against the T=1e5 serving hot '
            'path moves next_us_mean by {:+.2f}% and report_us_mean by '
            '{:+.2f}% — analytics readers share no lock with Next/Report; '
            'they walk immutable COW blocks published at fold '
            'boundaries.'.format(5, gate['next_us_pct'],
                                 gate['report_us_pct']),
    },
}
# Atomic write: construct fully, dump to a temp file, then rename. An
# exception anywhere above leaves no partial BENCH json behind.
tmp_path = out_path + '.tmp'
with open(tmp_path, 'w') as f:
    json.dump(doc, f, indent=2)
    f.write('\n')
os.replace(tmp_path, out_path)
print('wrote', out_path)

# Prior-PR baseline context (informational): compare shared headline
# metrics against the newest committed BENCH_pr*.json. A fresh clone (or a
# stripped checkout) may carry no baseline at all — that is a NOTICE and a
# skip, never a failure: the hard gates above already ran against this
# run's own control arms.
import glob

def pr_number(path):
    m = re.match(r'BENCH_pr(\d+)\.json$', os.path.basename(path))
    return int(m.group(1)) if m else -1

baselines = sorted((p for p in glob.glob('BENCH_pr*.json')
                    if p != out_path and pr_number(p) >= 0),
                   key=pr_number)
if not baselines:
    print('NOTICE: no prior BENCH_pr*.json baseline in the working tree '
          '(fresh clone?) — skipping the baseline comparison')
else:
    base_path = baselines[-1]
    try:
        with open(base_path) as f:
            base = json.load(f)
        def t1e5_index_next(d):
            for row in d.get('next_latency', {}).get('rows', []):
                if row[0] == 100000 and row[1] == 'index':
                    return row[2]
            return None
        ours, theirs = t1e5_index_next(doc), t1e5_index_next(base)
        if ours is not None and theirs is not None:
            print('baseline {}: T=1e5 index next_us_mean {} -> {} '
                  '({:+.1f}%)'.format(base_path, theirs, ours,
                                      100.0 * (ours - theirs) / theirs))
        else:
            print('NOTICE: baseline', base_path, 'shares no comparable '
                  'next_latency row — skipping the baseline comparison')
    except (OSError, ValueError) as e:
        print('NOTICE: baseline', base_path, 'unreadable (', e, ') — '
              'skipping the baseline comparison')
PYEOF
