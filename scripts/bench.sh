#!/usr/bin/env bash
# Uniform perf-bench runner: executes the selector-scaling benchmarks —
#   bench/scaling_tenants   (T x K sweep of the shared-prior belief engine)
#   bench/scaling_shards    (N shards x T tenants scan critical path)
#   bench/next_latency      (per-Next() cost: O(T) scan vs candidate index,
#                            plus the shard-parallel report-throughput sweep)
# — sequentially (single-core container: never bench while a build runs),
# captures each binary's stdout under bench-logs/, and emits a machine
# written BENCH json (default BENCH_pr8.json) with the parsed next_latency
# and report-throughput tables plus the raw rows of the other two sweeps.
#
# Usage: scripts/bench.sh [OUTPUT_JSON] [BUILD_DIR]
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_pr8.json}"
BUILD_DIR="${2:-build}"

for bench in scaling_tenants scaling_shards next_latency; do
  if [[ ! -x "${BUILD_DIR}/bench/${bench}" ]]; then
    echo "error: ${BUILD_DIR}/bench/${bench} not built (run tier1.sh first)" >&2
    exit 1
  fi
done

mkdir -p bench-logs
for bench in scaling_tenants scaling_shards next_latency; do
  echo "== ${bench}"
  "./${BUILD_DIR}/bench/${bench}" | tee "bench-logs/${bench}.txt"
done

python3 - "${OUT}" "${BUILD_DIR}" <<'PYEOF'
import json, re, subprocess, sys, datetime, os

out_path = sys.argv[1]
build_dir = sys.argv[2]

def cmake_build_type():
    try:
        with open(os.path.join(build_dir, 'CMakeCache.txt')) as f:
            for line in f:
                if line.startswith('CMAKE_BUILD_TYPE:'):
                    return line.strip().split('=', 1)[1] or 'unknown'
    except OSError:
        pass
    return 'unknown'

def read(name):
    with open(os.path.join('bench-logs', name + '.txt')) as f:
        return f.read()

def table_rows(text):
    """Numeric rows of the whitespace/pipe tables the sweeps print."""
    rows = []
    for line in text.splitlines():
        if line.startswith('#') or not line.strip():
            continue
        cells = [c for c in re.split(r'[|\s]+', line.strip()) if c]
        try:
            rows.append([float(c.rstrip('x')) for c in cells])
        except ValueError:
            continue  # header line
    return rows

next_latency = read('next_latency')
rows = []
for line in next_latency.splitlines():
    if line.startswith('NEXT_LATENCY,'):
        _, tenants, engine, next_us, report_us = line.split(',')
        rows.append([int(tenants), engine, float(next_us), float(report_us)])
speedups = {}
for t in sorted({r[0] for r in rows}):
    scan = next(r for r in rows if r[0] == t and r[1] == 'scan')
    index = next(r for r in rows if r[0] == t and r[1] == 'index')
    speedups[str(t)] = round(scan[2] / index[2], 2)

tp_rows = []
for line in next_latency.splitlines():
    if line.startswith('REPORT_TP,'):
        _, tenants, devices, shards, reports, rep_us, coord_us, wall_us = \
            line.split(',')
        tp_rows.append([int(tenants), int(devices), int(shards), int(reports),
                        float(rep_us), float(coord_us), float(wall_us)])

def tp_cell(devices, shards):
    return next(r for r in tp_rows if r[1] == devices and r[2] == shards)

def compiler():
    try:
        return subprocess.run(['g++', '--version'], capture_output=True,
                              text=True).stdout.splitlines()[0]
    except OSError:
        return 'unknown'

doc = {
    'benchmark': 'scripts/bench.sh: bench/scaling_tenants + '
                 'bench/scaling_shards + bench/next_latency',
    'description':
        'PR 5: incremental candidate index. next_latency drives identical '
        'GREEDY campaigns (bit-identical traces, pinned by the index/scan '
        'conformance suite) through the scan engine and the index-backed '
        'engine, timing Next() and Report() separately with '
        'CLOCK_THREAD_CPUTIME_ID on the driving thread (thread-CPU clocks '
        'are not inflated by host oversubscription; this container has one '
        'core). The index answers Next() from per-shard tournament roots '
        'and pays an O(log T) leaf replay per Report instead of an O(T K) '
        'rescan per Next. The report_throughput section measures the PR 8 '
        'shard-parallel report pipeline: Report validates the ticket under '
        'the coordinator lock and queues the O(t^2) belief fold on the '
        'tenant\'s owning shard worker, so a burst of D completions folds '
        'concurrently across N shards; report_us_mean is the per-completion '
        'fold critical path (max over workers of the thread-CPU delta).',
    'recorded': datetime.date.today().isoformat(),
    'command': './' + ' && ./'.join(
        build_dir + '/bench/' + b
        for b in ('scaling_tenants', 'scaling_shards', 'next_latency')),
    'environment': {
        'compiler': compiler(),
        'cmake_build_type': cmake_build_type(),
        'num_cpus': os.cpu_count(),
    },
    'next_latency': {
        'scheduler': 'greedy',
        'models_per_tenant': 6,
        'devices': 1,
        'steady_state_steps': 200,
        'columns': ['tenants', 'engine', 'next_us_mean', 'report_us_mean'],
        'rows': rows,
        'next_speedup_index_vs_scan': speedups,
        'headline':
            'Per-Next() critical path with the candidate index grows '
            'sub-linearly in T ({} us at T=1e3 -> {} us at T=1e5) while the '
            'scan path grows linearly; at T=100k GREEDY the index serves '
            'Next() {}x faster than the scan, and its Report-side leaf '
            'refresh stays cheaper than the scan engine\'s report path.'
            .format(
                next(r[2] for r in rows if r[0] == 1000 and r[1] == 'index'),
                next(r[2] for r in rows if r[0] == 100000 and r[1] == 'index'),
                speedups.get('100000')),
    },
    'report_throughput': {
        'scheduler': 'greedy',
        'use_candidate_index': True,
        'tenants': 240,
        'models_per_tenant': 6,
        'columns': ['tenants', 'devices', 'shards', 'reports',
                    'report_us_mean', 'coord_us_mean', 'wall_us_mean'],
        'rows': tp_rows,
        'fold_critical_path_speedup_n8_vs_n1_at_d8':
            round(tp_cell(8, 1)[4] / tp_cell(8, 8)[4], 2),
        'headline':
            'Shard-parallel report pipeline: with all 8 device slots '
            'completing in bursts, the per-completion fold critical path '
            '(max-over-shard-workers thread CPU) falls from {} us on the '
            'serialized engine (N=1: every fold on one worker) to {} us at '
            'N=8 — {}x — while the coordinator phase (ticket validation + '
            'enqueue) stays a constant-time sliver of the old under-lock '
            'fold.'.format(
                tp_cell(8, 1)[4], tp_cell(8, 8)[4],
                round(tp_cell(8, 1)[4] / tp_cell(8, 8)[4], 2)),
    },
    'scaling_tenants': {'raw_rows': table_rows(read('scaling_tenants'))},
    'scaling_shards': {'raw_rows': table_rows(read('scaling_shards'))},
}
with open(out_path, 'w') as f:
    json.dump(doc, f, indent=2)
    f.write('\n')
print('wrote', out_path)
PYEOF
